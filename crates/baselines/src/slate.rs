//! SLATE policy model.
//!
//! Documented behaviour (paper §II-B, §IV-D): every algorithm is organized
//! as block outer products on top of batched GEMM; accelerator traffic goes
//! exclusively host↔device over PCIe (its batched-GEMM portability layer
//! "was unable to exploit the capability of 8 GPUs to directly exchange
//! data through the high speed NVLink network"); the asymptotic kernel
//! efficiency is good, but the 4 × 16 GB/s PCIe uplinks bound everything.

use xk_kernels::perfmodel::TileOp;
use xk_kernels::{GpuModel, Routine};
use xk_sim::SimTime;
use xk_topo::{Device, FabricSpec};

use crate::fabric::Fabric;
use crate::xkblas_like::outcome_to_result;
use crate::{RunParams, RunResult};

/// Simulates one SLATE routine call on `topo`.
pub fn run_slate(topo: &FabricSpec, params: &RunParams) -> RunResult {
    let n_gpus = topo.n_gpus();
    let mut fabric = Fabric::new(topo, 2);
    let model = GpuModel::v100();
    let b = params.tile;
    let n = params.n;
    let bt = n.div_ceil(b).max(1);
    let word = 8u64;
    let dim = |i: usize| if i + 1 == bt { n - i * b } else { b };

    // C tiles are owned round-robin by block column: GPU g holds the block
    // columns j with j % n_gpus == g, resident for the whole call.
    // Step k of the outer product: broadcast A(:,k) panel and B(k,:) panel
    // to every GPU over PCIe, then one batched GEMM per GPU updating its
    // local C tiles.
    let mut gpu_ready = vec![SimTime::ZERO; n_gpus];

    // Initial C upload (beta != 0 semantics: C is read).
    for j in 0..bt {
        let g = j % n_gpus;
        for i in 0..bt {
            let bytes = (dim(i) * dim(j)) as u64 * word;
            let res = fabric.transfer(topo, Device::Host, Device::Gpu(g), bytes, gpu_ready[g], false, "C");
            gpu_ready[g] = res.end;
        }
    }

    let tri = matches!(params.routine, Routine::Syrk | Routine::Syr2k);
    let factor = match params.routine {
        Routine::Syr2k => 2.0,
        Routine::Trmm | Routine::Trsm => 0.5,
        _ => 1.0,
    };

    for k in 0..bt {
        // Panel broadcast: each GPU pulls the k-th panels of A and B over
        // its own PCIe path (no P2P).
        let panel_a: u64 = (0..bt).map(|i| (dim(i) * dim(k)) as u64 * word).sum();
        let panel_b: u64 = (0..bt).map(|j| (dim(k) * dim(j)) as u64 * word).sum();
        for (g, ready) in gpu_ready.iter_mut().enumerate() {
            let ra = fabric.transfer(topo, Device::Host, Device::Gpu(g), panel_a, *ready, false, "Apanel");
            let rb = fabric.transfer(topo, Device::Host, Device::Gpu(g), panel_b, ra.end, false, "Bpanel");
            *ready = rb.end;
        }
        // Batched GEMM per GPU over its local tiles.
        for (g, ready) in gpu_ready.iter_mut().enumerate() {
            let mut flops = 0.0;
            for j in (0..bt).filter(|j| j % n_gpus == g) {
                for i in 0..bt {
                    if tri && i < j {
                        continue;
                    }
                    flops += 2.0 * dim(i) as f64 * dim(j) as f64 * dim(k) as f64 * factor;
                }
            }
            if flops > 0.0 {
                // Batched GEMM reaches the big-tile efficiency tier.
                let eff_op = TileOp::Gemm { m: b, n: b, k: b };
                let rate = model.rate(eff_op);
                let res = fabric.kernel(g, k % 2, *ready, flops / rate, "batched gemm");
                *ready = res.end;
            }
        }
        // SLATE executes the block outer product in synchronous steps:
        // every GPU finishes step k before the next panel broadcast
        // starts (no lookahead in its accelerator path).
        let latest = gpu_ready.iter().copied().fold(SimTime::ZERO, SimTime::max);
        for r in &mut gpu_ready {
            *r = latest;
        }
    }

    // Results home.
    for j in 0..bt {
        let g = j % n_gpus;
        for i in 0..bt {
            let bytes = (dim(i) * dim(j)) as u64 * word;
            let res = fabric.transfer(topo, Device::Gpu(g), Device::Host, bytes, gpu_ready[g], false, "C back");
            gpu_ready[g] = res.end;
        }
    }

    let sim = xk_runtime::SimOutcome {
        makespan: fabric.makespan(),
        bytes_h2d: fabric.bytes.0,
        bytes_d2h: fabric.bytes.1,
        bytes_p2p: fabric.bytes.2,
        trace: fabric.trace,
        tasks_run: 0,
        steals: 0,
        obs: None,
        failures: Vec::new(),
    };
    outcome_to_result(sim, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    #[test]
    fn slate_never_uses_p2p() {
        let topo = dgx1();
        let r = run_slate(
            &topo,
            &RunParams {
                routine: Routine::Gemm,
                n: 16384,
                tile: 4096,
                data_on_device: false,
            },
        );
        assert_eq!(r.bytes_p2p, 0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn panel_broadcast_inflates_h2d() {
        // Every GPU pulls every panel: H2D ≈ n_gpus × (A + B) + 2 × C.
        let topo = dgx1();
        let n = 8192u64;
        let r = run_slate(
            &topo,
            &RunParams {
                routine: Routine::Gemm,
                n: n as usize,
                tile: 2048,
                data_on_device: false,
            },
        );
        let matrix = n * n * 8;
        assert!(r.bytes_h2d >= 8 * 2 * matrix, "h2d {}", r.bytes_h2d);
    }

    #[test]
    fn all_routines_complete() {
        let topo = dgx1();
        for routine in Routine::ALL {
            let r = run_slate(
                &topo,
                &RunParams {
                    routine,
                    n: 4096,
                    tile: 1024,
                    data_on_device: false,
                },
            );
            assert!(r.seconds > 0.0, "{routine:?}");
        }
    }
}
