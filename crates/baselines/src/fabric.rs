//! A bare engine fabric for the custom baseline drivers (cuBLAS-XT, SLATE)
//! that do not use the task runtime: the same per-GPU copy engines, kernel
//! streams and shared PCIe uplinks as `xk_runtime::sim_exec`, without any
//! software cache or heuristics.

use xk_sim::{Duration, EngineId, EnginePool, Reservation, SimTime};
use xk_topo::{BusSegment, Device, FabricSpec};
use xk_trace::{FlowId, Place, Span, SpanKind, Trace};

/// The engine fabric of a custom baseline simulation.
pub struct Fabric {
    pool: EnginePool,
    per_gpu_in: Vec<EngineId>,
    per_gpu_out: Vec<EngineId>,
    streams: Vec<Vec<EngineId>>,
    uplinks: Vec<EngineId>,
    intersocket: EngineId,
    /// One NIC engine per node (empty on single-node fabrics, keeping
    /// legacy engine tables bit-identical).
    nics: Vec<EngineId>,
    /// Recorded spans.
    pub trace: Trace,
    /// Byte counters (H2D, D2H, P2P).
    pub bytes: (u64, u64, u64),
}

impl Fabric {
    /// Builds the fabric with `streams_per_gpu` kernel engines per GPU.
    pub fn new(topo: &FabricSpec, streams_per_gpu: usize) -> Self {
        let mut pool = EnginePool::new();
        let n = topo.n_gpus();
        let per_gpu_in = (0..n).map(|g| pool.add(format!("gpu{g}.in"))).collect();
        let per_gpu_out = (0..n).map(|g| pool.add(format!("gpu{g}.out"))).collect();
        // One compute engine per GPU: CUDA streams share the SMs. The
        // `streams_per_gpu` parameter is kept for lane labelling only.
        let _ = streams_per_gpu;
        let streams = (0..n)
            .map(|g| vec![pool.add(format!("gpu{g}.kernel"))])
            .collect();
        let uplinks = (0..topo.n_switches())
            .map(|s| pool.add(format!("switch{s}.uplink")))
            .collect();
        let intersocket = pool.add("intersocket");
        let nics = if topo.n_nodes() > 1 {
            (0..topo.n_nodes())
                .map(|nd| pool.add(format!("node{nd}.nic")))
                .collect()
        } else {
            Vec::new()
        };
        Fabric {
            pool,
            per_gpu_in,
            per_gpu_out,
            streams,
            uplinks,
            intersocket,
            nics,
            trace: Trace::new(),
            bytes: (0, 0, 0),
        }
    }

    fn segments(&self, segs: &[BusSegment]) -> Vec<EngineId> {
        segs.iter()
            .map(|s| match s {
                BusSegment::HostUplink(sw) => self.uplinks[*sw],
                BusSegment::InterSocket => self.intersocket,
                BusSegment::InterNode(nd) => self.nics[*nd],
            })
            .collect()
    }

    /// Reserves a transfer between two devices; returns its window.
    /// `pitched` applies the `cudaMemcpy2D` derating on host routes.
    pub fn transfer(
        &mut self,
        topo: &FabricSpec,
        src: Device,
        dst: Device,
        bytes: u64,
        earliest: SimTime,
        pitched: bool,
        label: &str,
    ) -> Reservation {
        let route = topo.route(src, dst);
        let mut bw = route.bandwidth;
        if pitched {
            bw *= xk_kernels::PITCHED_COPY_FACTOR;
        }
        let dur = Duration::new(route.latency + bytes as f64 / bw);
        let mut engines = Vec::with_capacity(4);
        let (kind, place, lane) = match (src, dst) {
            (Device::Host, Device::Gpu(g)) => {
                engines.push(self.per_gpu_in[g]);
                (SpanKind::H2D, Place::Gpu(g as u32), 0)
            }
            (Device::Gpu(g), Device::Host) => {
                engines.push(self.per_gpu_out[g]);
                (SpanKind::D2H, Place::Gpu(g as u32), 2)
            }
            (Device::Gpu(s), Device::Gpu(d)) => {
                engines.push(self.per_gpu_out[s]);
                engines.push(self.per_gpu_in[d]);
                (SpanKind::P2P, Place::Gpu(d as u32), 0)
            }
            (Device::Host, Device::Host) => (SpanKind::H2D, Place::Host, 0),
        };
        engines.extend(self.segments(&route.segments));
        let res = self.pool.reserve(&engines, earliest, dur);
        match kind {
            SpanKind::H2D => self.bytes.0 += bytes,
            SpanKind::D2H => self.bytes.1 += bytes,
            SpanKind::P2P => self.bytes.2 += bytes,
            _ => {}
        }
        let label = self.trace.intern(label);
        self.trace.push(Span {
            place,
            lane,
            kind,
            start: res.start.seconds(),
            end: res.end.seconds(),
            bytes,
            label,
            flow: FlowId::NONE,
        });
        res
    }

    /// Reserves a kernel of `seconds` on the given stream of `gpu`.
    pub fn kernel(
        &mut self,
        gpu: usize,
        stream: usize,
        earliest: SimTime,
        seconds: f64,
        label: &str,
    ) -> Reservation {
        let s = self.streams[gpu][stream % self.streams[gpu].len()];
        let res = self.pool.reserve(&[s], earliest, Duration::new(seconds));
        let label = self.trace.intern(label);
        self.trace.push(Span {
            place: Place::Gpu(gpu as u32),
            lane: (3 + stream % self.streams[gpu].len()) as u8,
            kind: SpanKind::Kernel,
            start: res.start.seconds(),
            end: res.end.seconds(),
            bytes: 0,
            label,
            flow: FlowId::NONE,
        });
        res
    }

    /// The makespan recorded so far.
    pub fn makespan(&self) -> f64 {
        self.trace.makespan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    #[test]
    fn transfers_contend_on_shared_uplink() {
        let topo = dgx1();
        let mut f = Fabric::new(&topo, 2);
        // GPUs 0 and 1 share switch 0: their H2D transfers serialize.
        let r0 = f.transfer(&topo, Device::Host, Device::Gpu(0), 1 << 28, SimTime::ZERO, false, "a");
        let r1 = f.transfer(&topo, Device::Host, Device::Gpu(1), 1 << 28, SimTime::ZERO, false, "b");
        assert!(r1.start >= r0.end);
        // GPU 2 is on another switch: overlaps.
        let r2 = f.transfer(&topo, Device::Host, Device::Gpu(2), 1 << 28, SimTime::ZERO, false, "c");
        assert_eq!(r2.start, SimTime::ZERO);
        assert_eq!(f.bytes.0, 3 << 28);
    }

    #[test]
    fn kernels_serialize_per_gpu() {
        // One compute engine per GPU: streams time-share the SMs, so two
        // kernels on gpu0 serialize regardless of their stream tag, while
        // another GPU overlaps freely.
        let topo = dgx1();
        let mut f = Fabric::new(&topo, 2);
        let r0 = f.kernel(0, 0, SimTime::ZERO, 1.0, "k0");
        let r1 = f.kernel(0, 1, SimTime::ZERO, 1.0, "k1");
        let r2 = f.kernel(1, 0, SimTime::ZERO, 1.0, "k2");
        assert_eq!(r1.start, r0.end);
        assert_eq!(r2.start, SimTime::ZERO);
        assert!((f.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cross_node_transfers_contend_on_the_nics() {
        // Two P2P transfers between different GPU pairs that both cross
        // the inter-node link serialize on the shared NIC engines, while a
        // same-node transfer on untouched engines overlaps.
        let topo = xk_topo::fabrics::dual_node_ib(4);
        let mut f = Fabric::new(&topo, 1);
        let r0 = f.transfer(&topo, Device::Gpu(0), Device::Gpu(4), 1 << 28, SimTime::ZERO, false, "a");
        let r1 = f.transfer(&topo, Device::Gpu(1), Device::Gpu(5), 1 << 28, SimTime::ZERO, false, "b");
        assert!(r1.start >= r0.end, "both cross the NICs: must serialize");
        let r2 = f.transfer(&topo, Device::Gpu(2), Device::Gpu(3), 1 << 28, SimTime::ZERO, false, "c");
        assert_eq!(r2.start, SimTime::ZERO, "same-node pair is unaffected");
    }

    #[test]
    fn pitched_transfers_are_slower() {
        let topo = dgx1();
        let mut f = Fabric::new(&topo, 1);
        let plain = f.transfer(&topo, Device::Host, Device::Gpu(4), 1 << 28, SimTime::ZERO, false, "p");
        let t_plain = plain.end.seconds() - plain.start.seconds();
        let pitched = f.transfer(&topo, Device::Host, Device::Gpu(6), 1 << 28, SimTime::ZERO, true, "q");
        let t_pitched = pitched.end.seconds() - pitched.start.seconds();
        assert!(t_pitched > t_plain);
    }
}
