//! Parameter sweeps with the paper's best-tile selection.

use xk_baselines::{run, Library, RunError, RunParams, RunResult};
use xk_kernels::Routine;
use xk_topo::Topology;

/// Matrix dimensions of the paper's x-axes (Fig. 3–5: 4096 … 49152).
pub const PAPER_DIMS: [usize; 7] = [4096, 8192, 16384, 24576, 32768, 40960, 49152];

/// A reduced sweep for quick runs / CI.
pub const PAPER_DIMS_SMALL: [usize; 4] = [4096, 8192, 16384, 24576];

/// One point of a performance series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Matrix dimension.
    pub n: usize,
    /// Best-performing tile size among the library's candidates.
    pub tile: usize,
    /// Achieved TFlop/s (None when the library errors at this point, e.g.
    /// BLASX out-of-memory above N = 45000).
    pub tflops: Option<f64>,
    /// The run with the winning tile (None on error).
    pub result: Option<RunResult>,
}

/// Runs `lib` at dimension `n`, trying every candidate tile size and
/// keeping the best (§IV-A block-size selection).
pub fn best_tile_run(
    lib: Library,
    topo: &Topology,
    routine: Routine,
    n: usize,
    data_on_device: bool,
) -> Result<(usize, RunResult), RunError> {
    let mut best: Option<(usize, RunResult)> = None;
    let mut last_err = RunError::Unsupported;
    for &tile in lib.tile_candidates() {
        if tile > n {
            continue;
        }
        let params = RunParams {
            routine,
            n,
            tile,
            data_on_device,
        };
        match run(lib, topo, &params) {
            Ok(r) => {
                let better = best
                    .as_ref()
                    .map(|(_, b)| r.tflops > b.tflops)
                    .unwrap_or(true);
                if better {
                    best = Some((tile, r));
                }
            }
            Err(e) => last_err = e,
        }
    }
    // Tiny problems where every candidate exceeds n: fall back to one tile.
    if best.is_none() && lib.tile_candidates().iter().all(|&t| t > n) {
        let params = RunParams {
            routine,
            n,
            tile: n.max(1),
            data_on_device,
        };
        if let Ok(r) = run(lib, topo, &params) {
            best = Some((n.max(1), r));
        }
    }
    best.ok_or(last_err)
}

/// Sweeps a whole series of dimensions for one `(library, routine)`.
pub fn sweep_series(
    lib: Library,
    topo: &Topology,
    routine: Routine,
    dims: &[usize],
    data_on_device: bool,
) -> Vec<SeriesPoint> {
    dims.iter()
        .map(|&n| match best_tile_run(lib, topo, routine, n, data_on_device) {
            Ok((tile, r)) => SeriesPoint {
                n,
                tile,
                tflops: Some(r.tflops),
                result: Some(r),
            },
            Err(_) => SeriesPoint {
                n,
                tile: 0,
                tflops: None,
                result: None,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_baselines::XkVariant;
    use xk_topo::dgx1;

    #[test]
    fn best_tile_is_from_candidate_set() {
        let topo = dgx1();
        let (tile, r) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 8192, false)
                .unwrap();
        assert!(Library::XkBlas(XkVariant::Full)
            .tile_candidates()
            .contains(&tile));
        assert!(r.tflops > 1.0);
    }

    #[test]
    fn series_reports_oom_as_none() {
        let topo = dgx1();
        let pts = sweep_series(Library::Blasx, &topo, Routine::Gemm, &[8192, 49152], false);
        assert!(pts[0].tflops.is_some());
        assert!(pts[1].tflops.is_none());
    }

    #[test]
    fn small_problem_fallback_tile() {
        let topo = dgx1();
        let (tile, _) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 512, false)
                .unwrap();
        assert_eq!(tile, 512);
    }
}
