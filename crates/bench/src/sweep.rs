//! Parameter sweeps with the paper's best-tile selection.
//!
//! Sweeps are embarrassingly parallel across `(dimension, tile)` points and
//! every simulated run is deterministic, so [`sweep_series_par`] fans the
//! grid over a rayon pool and still produces bit-identical series to the
//! serial [`sweep_series`]: candidate results are collected in candidate
//! order and reduced by the same strict-`>` fold the serial loop uses.

use rayon::prelude::*;
use xk_baselines::{run, Library, RunError, RunParams, RunResult};
use xk_kernels::Routine;
use xk_topo::FabricSpec;

use crate::runcache::RunCache;

/// Matrix dimensions of the paper's x-axes (Fig. 3–5: 4096 … 49152).
pub const PAPER_DIMS: [usize; 7] = [4096, 8192, 16384, 24576, 32768, 40960, 49152];

/// A reduced sweep for quick runs / CI.
pub const PAPER_DIMS_SMALL: [usize; 4] = [4096, 8192, 16384, 24576];

/// One point of a performance series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Matrix dimension.
    pub n: usize,
    /// Best-performing tile size among the library's candidates.
    pub tile: usize,
    /// Achieved TFlop/s (None when the library errors at this point, e.g.
    /// BLASX out-of-memory above N = 45000).
    pub tflops: Option<f64>,
    /// The run with the winning tile (None on error).
    pub result: Option<RunResult>,
}

/// One run, through the memo cache when one is given.
fn run_point(
    lib: Library,
    topo: &FabricSpec,
    params: &RunParams,
    cache: Option<&RunCache>,
) -> Result<RunResult, RunError> {
    match cache {
        Some(c) => c.run(lib, topo, params),
        None => run(lib, topo, params),
    }
}

/// Keeps the error that tells the caller the most (the workspace-wide
/// [`RunError::most_informative`] rule: a concrete resource failure beats
/// the catch-all `Unsupported`).
fn more_informative(seen: Option<RunError>, new: RunError) -> Option<RunError> {
    Some(match seen {
        Some(old) => old.most_informative(new),
        None => new,
    })
}

/// Reduces candidate outcomes (in candidate order) to the winning
/// `(tile, result)`. The strict `>` keeps the first tile on ties, exactly
/// like the serial loop, so serial and parallel evaluation agree bitwise.
fn fold_best(
    outcomes: Vec<(usize, Result<RunResult, RunError>)>,
) -> Result<(usize, RunResult), RunError> {
    let mut best: Option<(usize, RunResult)> = None;
    let mut err: Option<RunError> = None;
    for (tile, outcome) in outcomes {
        match outcome {
            Ok(r) => {
                let better = best
                    .as_ref()
                    .map(|(_, b)| r.tflops > b.tflops)
                    .unwrap_or(true);
                if better {
                    best = Some((tile, r));
                }
            }
            Err(e) => err = more_informative(err, e),
        }
    }
    best.ok_or_else(|| err.unwrap_or(RunError::Unsupported))
}

/// [`best_tile_run`] with optional memoization and parallel evaluation of
/// the tile candidates. The winner is identical to the serial pick.
pub fn best_tile_run_with(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    n: usize,
    data_on_device: bool,
    cache: Option<&RunCache>,
    parallel: bool,
) -> Result<(usize, RunResult), RunError> {
    let params = |tile: usize| RunParams {
        routine,
        n,
        tile,
        data_on_device,
    };
    let candidates: Vec<usize> = lib
        .tile_candidates()
        .iter()
        .copied()
        .filter(|&t| t <= n)
        .collect();
    if candidates.is_empty() {
        // Tiny problems where every candidate exceeds n: run one fallback
        // tile and propagate *its* error — not a blanket `Unsupported`.
        let tile = n.max(1);
        return run_point(lib, topo, &params(tile), cache).map(|r| (tile, r));
    }
    let outcomes: Vec<(usize, Result<RunResult, RunError>)> = if parallel {
        candidates
            .par_iter()
            .map(|&tile| (tile, run_point(lib, topo, &params(tile), cache)))
            .collect()
    } else {
        candidates
            .iter()
            .map(|&tile| (tile, run_point(lib, topo, &params(tile), cache)))
            .collect()
    };
    fold_best(outcomes)
}

/// [`best_tile_run_with`] fanned over the cross-seed replica driver
/// ([`xk_sim::run_replicas`]) instead of the rayon pool: every tile
/// candidate is one replica, `threads` caps the worker count (0 = all
/// cores). Outcomes are placed by candidate index and reduced by the same
/// strict-`>` fold as the serial loop, so the winner is bit-identical.
pub fn best_tile_run_batch(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    n: usize,
    data_on_device: bool,
    cache: Option<&RunCache>,
    threads: usize,
) -> Result<(usize, RunResult), RunError> {
    let params = |tile: usize| RunParams {
        routine,
        n,
        tile,
        data_on_device,
    };
    let candidates: Vec<usize> = lib
        .tile_candidates()
        .iter()
        .copied()
        .filter(|&t| t <= n)
        .collect();
    if candidates.is_empty() {
        let tile = n.max(1);
        return run_point(lib, topo, &params(tile), cache).map(|r| (tile, r));
    }
    let outcomes: Vec<(usize, Result<RunResult, RunError>)> =
        xk_sim::run_replicas(candidates.len(), threads, |i| {
            let tile = candidates[i];
            (tile, run_point(lib, topo, &params(tile), cache))
        });
    fold_best(outcomes)
}

/// Runs `lib` at dimension `n`, trying every candidate tile size and
/// keeping the best (§IV-A block-size selection).
pub fn best_tile_run(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    n: usize,
    data_on_device: bool,
) -> Result<(usize, RunResult), RunError> {
    best_tile_run_with(lib, topo, routine, n, data_on_device, None, false)
}

fn to_point(n: usize, outcome: Result<(usize, RunResult), RunError>) -> SeriesPoint {
    match outcome {
        Ok((tile, r)) => SeriesPoint {
            n,
            tile,
            tflops: Some(r.tflops),
            result: Some(r),
        },
        Err(_) => SeriesPoint {
            n,
            tile: 0,
            tflops: None,
            result: None,
        },
    }
}

/// Sweeps a whole series of dimensions for one `(library, routine)`.
pub fn sweep_series(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    dims: &[usize],
    data_on_device: bool,
) -> Vec<SeriesPoint> {
    dims.iter()
        .map(|&n| to_point(n, best_tile_run(lib, topo, routine, n, data_on_device)))
        .collect()
}

/// The parallel [`sweep_series`]: dimensions fan out across the rayon
/// pool and each dimension evaluates its tile candidates in parallel too.
/// The returned series is ordered like `dims` and bit-identical to the
/// serial sweep.
pub fn sweep_series_par(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    dims: &[usize],
    data_on_device: bool,
    cache: Option<&RunCache>,
) -> Vec<SeriesPoint> {
    dims.par_iter()
        .map(|&n| {
            to_point(
                n,
                best_tile_run_with(lib, topo, routine, n, data_on_device, cache, true),
            )
        })
        .collect()
}

/// The replica-driver [`sweep_series`]: dimensions fan out as one replica
/// each over [`xk_sim::run_replicas`] (`threads` = 0 uses every core), and
/// each dimension evaluates its tile candidates serially inside its
/// replica. Results are placed by dimension index, so the series is
/// ordered like `dims` and bit-identical to the serial sweep.
pub fn sweep_series_batch(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    dims: &[usize],
    data_on_device: bool,
    cache: Option<&RunCache>,
    threads: usize,
) -> Vec<SeriesPoint> {
    xk_sim::run_replicas(dims.len(), threads, |i| {
        let n = dims[i];
        to_point(
            n,
            best_tile_run_with(lib, topo, routine, n, data_on_device, cache, false),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_baselines::XkVariant;
    use xk_topo::dgx1;

    #[test]
    fn best_tile_is_from_candidate_set() {
        let topo = dgx1();
        let (tile, r) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 8192, false)
                .unwrap();
        assert!(Library::XkBlas(XkVariant::Full)
            .tile_candidates()
            .contains(&tile));
        assert!(r.tflops > 1.0);
    }

    #[test]
    fn series_reports_oom_as_none() {
        let topo = dgx1();
        let pts = sweep_series(Library::Blasx, &topo, Routine::Gemm, &[8192, 49152], false);
        assert!(pts[0].tflops.is_some());
        assert!(pts[1].tflops.is_none());
    }

    #[test]
    fn small_problem_fallback_tile() {
        let topo = dgx1();
        let (tile, _) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 512, false)
                .unwrap();
        assert_eq!(tile, 512);
    }

    #[test]
    fn oom_is_reported_not_unsupported() {
        // BLASX runs out of aggregate device memory at N = 49152; the sweep
        // must surface that, not the catch-all `Unsupported`.
        let topo = dgx1();
        let err = best_tile_run(Library::Blasx, &topo, Routine::Gemm, 49152, false).unwrap_err();
        assert_eq!(err, RunError::OutOfMemory);
    }

    #[test]
    fn unsupported_routine_is_reported() {
        let topo = dgx1();
        let err = best_tile_run(Library::Dplasma, &topo, Routine::Syrk, 8192, false).unwrap_err();
        assert_eq!(err, RunError::Unsupported);
        // The small-problem fallback path propagates the run's real error
        // as well.
        let err = best_tile_run(Library::Dplasma, &topo, Routine::Syrk, 512, false).unwrap_err();
        assert_eq!(err, RunError::Unsupported);
    }

    #[test]
    fn parallel_and_cached_match_serial() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::XkBlas(XkVariant::Full);
        let serial = best_tile_run(lib, &topo, Routine::Gemm, 8192, false).unwrap();
        let par = best_tile_run_with(lib, &topo, Routine::Gemm, 8192, false, Some(&cache), true)
            .unwrap();
        assert_eq!(serial.0, par.0);
        assert_eq!(serial.1.tflops.to_bits(), par.1.tflops.to_bits());
        assert_eq!(serial.1.bytes_h2d, par.1.bytes_h2d);
        // A second cached evaluation answers every candidate from the memo.
        let again = best_tile_run_with(lib, &topo, Routine::Gemm, 8192, false, Some(&cache), true)
            .unwrap();
        assert_eq!(again.1.seconds.to_bits(), par.1.seconds.to_bits());
        let s = cache.stats();
        assert_eq!(s.hits, s.misses);
    }

    #[test]
    fn parallel_series_matches_serial() {
        let topo = dgx1();
        let dims = [4096, 8192];
        let s = sweep_series(Library::CublasXt, &topo, Routine::Gemm, &dims, false);
        let p = sweep_series_par(Library::CublasXt, &topo, Routine::Gemm, &dims, false, None);
        assert_eq!(s.len(), p.len());
        for (a, b) in s.iter().zip(&p) {
            assert_eq!(a.n, b.n);
            assert_eq!(a.tile, b.tile);
            assert_eq!(a.tflops.map(f64::to_bits), b.tflops.map(f64::to_bits));
        }
    }

    #[test]
    fn batched_series_matches_serial() {
        let topo = dgx1();
        let dims = [4096, 8192, 16384];
        let lib = Library::XkBlas(XkVariant::Full);
        let s = sweep_series(lib, &topo, Routine::Gemm, &dims, false);
        for threads in [1, 3] {
            let b = sweep_series_batch(lib, &topo, Routine::Gemm, &dims, false, None, threads);
            assert_eq!(s.len(), b.len());
            for (a, b) in s.iter().zip(&b) {
                assert_eq!(a.n, b.n);
                assert_eq!(a.tile, b.tile);
                assert_eq!(a.tflops.map(f64::to_bits), b.tflops.map(f64::to_bits));
            }
        }
    }

    #[test]
    fn batched_best_tile_matches_serial() {
        let topo = dgx1();
        let lib = Library::XkBlas(XkVariant::Full);
        let serial = best_tile_run(lib, &topo, Routine::Gemm, 8192, false).unwrap();
        let batch = best_tile_run_batch(lib, &topo, Routine::Gemm, 8192, false, None, 2).unwrap();
        assert_eq!(serial.0, batch.0);
        assert_eq!(serial.1.tflops.to_bits(), batch.1.tflops.to_bits());
        // The error paths agree with the serial reduction as well.
        let e = best_tile_run_batch(lib, &topo, Routine::Syrk, 512, false, None, 2);
        let se = best_tile_run(lib, &topo, Routine::Syrk, 512, false);
        assert_eq!(e.map(|(t, _)| t), se.map(|(t, _)| t));
    }
}
