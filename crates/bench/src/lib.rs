//! # xk-bench — the reproduction harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5) plus the
//! shared sweep machinery in this library: run a `(library, routine, N)`
//! grid with per-library tile-size selection (the paper's §IV-A
//! methodology: "we only report results with a tile size that maximizes
//! performance among the experimented tile sizes"), and print/serialize the
//! same rows the paper plots.

#![warn(missing_docs)]

#[cfg(feature = "harness")]
pub mod composition;
#[cfg(feature = "harness")]
pub mod figs;
#[cfg(feature = "graphgen")]
pub mod graphgen;
pub mod kernelbench;
#[cfg(feature = "harness")]
pub mod report;
#[cfg(feature = "harness")]
pub mod runcache;
#[cfg(feature = "harness")]
pub mod sweep;

#[cfg(feature = "harness")]
pub use composition::{
    composition_flops, run_chameleon_composition, run_xkblas_composition, CompositionResult,
};
#[cfg(feature = "harness")]
pub use report::{fmt_tflops, write_csv, write_result, Table};
#[cfg(feature = "harness")]
pub use runcache::{CacheStats, RunCache, RunKey};
#[cfg(feature = "harness")]
pub use sweep::{
    best_tile_run, best_tile_run_batch, best_tile_run_with, sweep_series, sweep_series_batch,
    sweep_series_par, SeriesPoint, PAPER_DIMS, PAPER_DIMS_SMALL,
};
