//! Memoization of simulated runs.
//!
//! The paper's evaluation re-derives many identical configurations: the
//! best-tile selection re-runs every `(library, routine, n, tile)` point,
//! Table II re-runs Fig. 3/4 points, and the trace figures re-simulate the
//! winners. Every simulation is deterministic in its inputs, so a run is
//! fully identified by `(library, routine, n, tile, data_on_device,
//! topology fingerprint)` — the [`RunCache`] maps that key to the finished
//! [`RunResult`] and never simulates the same configuration twice.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use xk_baselines::{run, Library, RunError, RunParams, RunResult};
use xk_kernels::Routine;
use xk_topo::Topology;

/// The memoization key: everything that determines a simulated run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RunKey {
    /// Library policy model.
    pub library: Library,
    /// BLAS-3 routine.
    pub routine: Routine,
    /// Matrix dimension.
    pub n: usize,
    /// Tile size.
    pub tile: usize,
    /// Data-on-device methodology.
    pub data_on_device: bool,
    /// [`Topology::fingerprint`] of the platform.
    pub topo_fingerprint: u64,
}

impl RunKey {
    /// Builds the key for one run.
    pub fn new(lib: Library, topo: &Topology, params: &RunParams) -> Self {
        RunKey {
            library: lib,
            routine: params.routine,
            n: params.n,
            tile: params.tile,
            data_on_device: params.data_on_device,
            topo_fingerprint: topo.fingerprint(),
        }
    }
}

/// Hit/miss counters of a cache, for run reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo table over [`xk_baselines::run`].
///
/// Concurrent lookups of the same key may both simulate (the lock is not
/// held during the run); both compute the identical deterministic result,
/// so the duplicate work is harmless and the first inserted value wins.
#[derive(Debug, Default)]
pub struct RunCache {
    map: Mutex<HashMap<RunKey, Result<RunResult, RunError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Runs `lib` with `params` on `topo`, returning the memoized outcome
    /// when this exact configuration was simulated before.
    pub fn run(
        &self,
        lib: Library,
        topo: &Topology,
        params: &RunParams,
    ) -> Result<RunResult, RunError> {
        let key = RunKey::new(lib, topo, params);
        if let Some(found) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Simulate outside the lock so independent points still run in
        // parallel; entry() keeps the first inserted value.
        let result = run(lib, topo, params);
        self.map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| result.clone());
        result
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized configurations.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.lock().unwrap().is_empty()
    }

    /// Drops every memoized run and resets the counters.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

static GLOBAL: OnceLock<RunCache> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide cache shared by the figure binaries.
pub fn global() -> &'static RunCache {
    GLOBAL.get_or_init(RunCache::new)
}

/// Enables or disables the global cache (the `--serial` baseline mode of
/// `run_all` turns it off so every point really simulates).
pub fn set_global_enabled(enabled: bool) {
    GLOBAL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The global cache, unless disabled via [`set_global_enabled`].
pub fn global_if_enabled() -> Option<&'static RunCache> {
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    fn params(n: usize, tile: usize) -> RunParams {
        RunParams {
            routine: Routine::Gemm,
            n,
            tile,
            data_on_device: false,
        }
    }

    #[test]
    fn second_lookup_hits_and_matches() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::CublasXt;
        let a = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        let b = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        assert_eq!(a.tflops.to_bits(), b.tflops.to_bits());
        assert_eq!(a.bytes_h2d, b.bytes_h2d);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let topo = dgx1();
        let cache = RunCache::new();
        // DPLASMA is GEMM-only: SYRK is Unsupported.
        let e1 = cache.run(Library::Dplasma, &topo, &{
            let mut p = params(4096, 2048);
            p.routine = Routine::Syrk;
            p
        });
        let e2 = cache.run(Library::Dplasma, &topo, &{
            let mut p = params(4096, 2048);
            p.routine = Routine::Syrk;
            p
        });
        assert!(matches!(e1, Err(RunError::Unsupported)));
        assert!(matches!(e2, Err(RunError::Unsupported)));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::CublasXt;
        let a = cache.run(lib, &topo, &params(4096, 1024)).unwrap();
        let b = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        assert_ne!(a.seconds.to_bits(), b.seconds.to_bits());
        assert_eq!(cache.stats().misses, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
