//! Memoization of simulated runs.
//!
//! The paper's evaluation re-derives many identical configurations: the
//! best-tile selection re-runs every `(library, routine, n, tile)` point,
//! Table II re-runs Fig. 3/4 points, and the trace figures re-simulate the
//! winners. Every simulation is deterministic in its inputs, so a run is
//! fully identified by `(library, routine, n, tile, data_on_device,
//! topology fingerprint)` — the [`RunCache`] maps that key to the finished
//! [`RunResult`] and never simulates the same configuration twice.
//!
//! Since PR 8 the storage is `xk-serve`'s lock-striped, single-flight
//! [`ShardedCache`] (the same exact tier the planner service uses):
//! lookups of different configuration families take different locks, and
//! concurrent misses of the *same* key coalesce onto one leader's DES run
//! instead of simulating twice. [`CacheStats::coalesced`] counts those
//! parked lookups separately from plain hits and misses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use xk_baselines::{run, Library, RunError, RunParams, RunResult};
use xk_topo::FabricSpec;

pub use xk_serve::{CacheStats, QueryKey as RunKey, ShardedCache};

/// A thread-safe, lock-striped memo table over [`xk_baselines::run`] with
/// single-flight admission: exactly one concurrent caller per key
/// simulates, the rest park and observe the leader's bit-identical result.
#[derive(Debug, Default)]
pub struct RunCache {
    inner: ShardedCache,
}

impl RunCache {
    /// An empty cache.
    pub fn new() -> Self {
        RunCache::default()
    }

    /// Runs `lib` with `params` on `topo`, returning the memoized outcome
    /// when this exact configuration was simulated before (or is being
    /// simulated right now by another thread).
    pub fn run(
        &self,
        lib: Library,
        topo: &FabricSpec,
        params: &RunParams,
    ) -> Result<RunResult, RunError> {
        let key = RunKey::new(lib, topo, params);
        self.inner
            .get_or_compute(key, || run(lib, topo, params))
            .0
    }

    /// The underlying sharded cache (shard spread diagnostics, and the
    /// engine-level admission API).
    pub fn sharded(&self) -> &ShardedCache {
        &self.inner
    }

    /// Current hit/coalesce/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of memoized configurations.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drops every memoized run and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

static GLOBAL: OnceLock<RunCache> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(true);

/// The process-wide cache shared by the figure binaries.
pub fn global() -> &'static RunCache {
    GLOBAL.get_or_init(RunCache::new)
}

/// Enables or disables the global cache (the `--serial` baseline mode of
/// `run_all` turns it off so every point really simulates).
pub fn set_global_enabled(enabled: bool) {
    GLOBAL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// The global cache, unless disabled via [`set_global_enabled`].
pub fn global_if_enabled() -> Option<&'static RunCache> {
    if GLOBAL_ENABLED.load(Ordering::Relaxed) {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_kernels::Routine;
    use xk_topo::dgx1;

    fn params(n: usize, tile: usize) -> RunParams {
        RunParams {
            routine: Routine::Gemm,
            n,
            tile,
            data_on_device: false,
        }
    }

    #[test]
    fn second_lookup_hits_and_matches() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::CublasXt;
        let a = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        let b = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        assert_eq!(a.tflops.to_bits(), b.tflops.to_bits());
        assert_eq!(a.bytes_h2d, b.bytes_h2d);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let topo = dgx1();
        let cache = RunCache::new();
        // DPLASMA is GEMM-only: SYRK is Unsupported.
        let e1 = cache.run(Library::Dplasma, &topo, &{
            let mut p = params(4096, 2048);
            p.routine = Routine::Syrk;
            p
        });
        let e2 = cache.run(Library::Dplasma, &topo, &{
            let mut p = params(4096, 2048);
            p.routine = Routine::Syrk;
            p
        });
        assert!(matches!(e1, Err(RunError::Unsupported)));
        assert!(matches!(e2, Err(RunError::Unsupported)));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::CublasXt;
        let a = cache.run(lib, &topo, &params(4096, 1024)).unwrap();
        let b = cache.run(lib, &topo, &params(4096, 2048)).unwrap();
        assert_ne!(a.seconds.to_bits(), b.seconds.to_bits());
        assert_eq!(cache.stats().misses, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_same_key_coalesces() {
        let topo = dgx1();
        let cache = RunCache::new();
        let lib = Library::CublasXt;
        let p = params(4096, 2048);
        let bits: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.run(lib, &topo, &p).unwrap().seconds.to_bits()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(bits.windows(2).all(|w| w[0] == w[1]));
        let st = cache.stats();
        assert_eq!(st.misses, 1, "single flight: one DES run");
        assert_eq!(st.hits + st.coalesced, 3);
        assert_eq!(cache.len(), 1);
    }
}
