//! Synthetic task-graph generators for benchmarking the submission path,
//! plus a faithful replica of the seed's graph representation so the
//! old-vs-new build rate can be measured inside one binary.

use std::collections::HashMap;

use xk_kernels::perfmodel::TileOp;
use xk_runtime::{Access, HandleId, TaskAccess, TaskGraph, TaskLabel};

/// The seed's per-task record, field for field as its `Task` struct
/// stored it on the submission path: an owned access `Vec`, an eagerly
/// formatted `String` label, and the kind/op/body/priority payload (the
/// tile registry is left out — it is identical in both representations).
pub struct LegacyTask {
    /// Task id, as the seed's `Task::id`.
    pub id: usize,
    /// Kernel vs flush, as the seed's `kind: TaskKind`.
    pub kind: u8,
    /// Kernel shape, as the seed's `op: Option<TileOp>`.
    pub op: Option<TileOp>,
    /// Owned accesses, as the seed's `accesses: Vec<TaskAccess>`.
    pub accesses: Vec<(usize, Access)>,
    /// Eager label, as the seed's `label: String`.
    pub label: String,
    /// Numeric payload slot, as the seed's `body: Option<TaskBody>`.
    pub body: Option<Box<dyn FnOnce() + Send + Sync>>,
    /// Priority, as the seed's `priority: i32`.
    pub priority: i32,
}

/// The seed's `TaskGraph` dependency bookkeeping, kept verbatim as a
/// benchmark baseline: `HashMap` histories, owned `readers_since_write`
/// Vecs, per-task successor Vecs, a per-task record with an owned access
/// `Vec` and an eagerly formatted `String` label, and a fresh `deps` Vec
/// per task.
#[derive(Default)]
pub struct LegacyGraph {
    histories: HashMap<usize, (Option<usize>, Vec<usize>)>,
    successors: Vec<Vec<usize>>,
    n_predecessors: Vec<usize>,
    tasks: Vec<LegacyTask>,
    n_edges: usize,
}

impl LegacyGraph {
    /// Empty graph.
    pub fn new() -> Self {
        LegacyGraph::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// True when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Number of dependency edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Total label bytes (keeps the label allocations observable).
    pub fn label_bytes(&self) -> usize {
        self.tasks.iter().map(|t| t.label.len()).sum()
    }

    /// Adds one task, replicating the seed's algorithm allocation for
    /// allocation: the caller hands over an owned access `Vec` (the
    /// seed's builders allocated one per task) and an eager label.
    pub fn add_task(
        &mut self,
        op: Option<TileOp>,
        accesses: Vec<(usize, Access)>,
        label: String,
    ) -> usize {
        let id = self.successors.len();
        let mut deps: Vec<usize> = Vec::new();
        for &(h, acc) in &accesses {
            let hist = self.histories.entry(h).or_default();
            if acc.reads() {
                if let Some(w) = hist.0 {
                    deps.push(w);
                }
            }
            if acc.writes() {
                if let Some(w) = hist.0 {
                    deps.push(w);
                }
                deps.extend(hist.1.iter().copied());
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&d| d != id);
        for &(h, acc) in &accesses {
            let hist = self.histories.entry(h).or_default();
            if acc.writes() {
                hist.0 = Some(id);
                hist.1.clear();
            } else if acc.reads() {
                hist.1.push(id);
            }
        }
        self.successors.push(Vec::new());
        self.n_predecessors.push(deps.len());
        for &d in &deps {
            self.successors[d].push(id);
            self.n_edges += 1;
        }
        self.tasks.push(LegacyTask {
            id,
            kind: 0,
            op,
            accesses,
            label,
            body: None,
            priority: 0,
        });
        id
    }
}

/// The access pattern of a tiled GEMM over an `nt × nt` tile grid with an
/// `nt`-deep k-loop: task `(i, j, l)` reads `A(i,l)` and `B(l,j)` and
/// updates `C(i,j)` — `nt³` tasks, the structure the paper's largest
/// sweep points produce (`nt = 48` ≈ 110k tasks).
pub fn gemm_task_accesses(
    nt: usize,
) -> impl Iterator<Item = ([(usize, Access); 3], (usize, usize))> {
    let a_base = 0;
    let b_base = nt * nt;
    let c_base = 2 * nt * nt;
    (0..nt).flat_map(move |i| {
        (0..nt).flat_map(move |j| {
            (0..nt).map(move |l| {
                (
                    [
                        (a_base + i * nt + l, Access::Read),
                        (b_base + l * nt + j, Access::Read),
                        (c_base + i * nt + j, Access::ReadWrite),
                    ],
                    (i, j),
                )
            })
        })
    })
}

/// Registers the `3·nt²` tiles of an `nt × nt` tiled GEMM and reserves
/// task/edge capacity. Tile registration is identical in both graph
/// representations, so benchmarks keep it outside the timed region.
pub fn gemm_graph_shell(nt: usize) -> (TaskGraph, Vec<HandleId>) {
    let mut g = TaskGraph::new();
    g.reserve(nt * nt * nt, 3 * nt * nt * nt);
    let handles: Vec<HandleId> = (0..3 * nt * nt)
        .map(|i| g.add_host_tile(64, false, format!("h{i}")))
        .collect();
    (g, handles)
}

/// The timed half of the CSR build: submits all `nt³` GEMM tasks (lazy
/// labels, inline accesses) and forces the successor CSR — the work the
/// legacy representation does eagerly inside `add_task`.
pub fn submit_gemm_tasks(g: &mut TaskGraph, handles: &[HandleId], nt: usize) {
    for (accs, (i, j)) in gemm_task_accesses(nt) {
        let accesses = accs.map(|(h, access)| TaskAccess { handle: handles[h], access });
        g.add_task(
            TileOp::Gemm { m: 256, n: 256, k: 256 },
            accesses,
            TaskLabel::tile("gemm", 'C', i, j),
        );
    }
    g.finalize();
}

/// Builds the tiled-GEMM graph on the CSR [`TaskGraph`] (lazy labels,
/// pooled histories) and forces the successor CSR, returning the graph.
pub fn build_gemm_graph_csr(nt: usize) -> TaskGraph {
    let (mut g, handles) = gemm_graph_shell(nt);
    submit_gemm_tasks(&mut g, &handles, nt);
    g
}

/// Builds the same tiled-GEMM dependence structure on the seed replica
/// (eager `format!` labels included, as the seed's builders did).
pub fn build_gemm_graph_legacy(nt: usize) -> LegacyGraph {
    let mut g = LegacyGraph::new();
    for (accs, (i, j)) in gemm_task_accesses(nt) {
        g.add_task(
            Some(TileOp::Gemm { m: 256, n: 256, k: 256 }),
            accs.to_vec(),
            format!("gemm C({i},{j})"),
        );
    }
    g
}

/// A wide layered DAG for executor-release benchmarking: `layers × width`
/// bodyless tasks over two ping-pong tile sets. The task at `(layer, col)`
/// reads its neighbour's tile from the previous layer's output set and
/// rewrites tile `col` in the other set, so every layer is fully
/// `width`-parallel (no intra-layer edges) yet depends on the previous
/// one, and each task releases multiple successors.
pub fn build_wide_dag(layers: usize, width: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let ping: Vec<HandleId> = (0..width)
        .map(|c| g.add_host_tile(64, false, format!("p{c}")))
        .collect();
    let pong: Vec<HandleId> = (0..width)
        .map(|c| g.add_host_tile(64, false, format!("q{c}")))
        .collect();
    for layer in 0..layers {
        let (src, dst) = if layer % 2 == 0 { (&ping, &pong) } else { (&pong, &ping) };
        for (c, &own) in dst.iter().enumerate() {
            g.add_task(
                TileOp::Gemm { m: 4, n: 4, k: 4 },
                [
                    (src[(c + 1) % width], Access::Read),
                    (own, Access::ReadWrite),
                ]
                .map(|(handle, access)| TaskAccess { handle, access }),
                TaskLabel::None,
            );
        }
    }
    g.finalize();
    g
}

/// Shape of a randomly generated DAG (see [`build_random_dag`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomDagSpec {
    /// Number of kernel tasks.
    pub tasks: usize,
    /// Number of data tiles.
    pub handles: usize,
    /// Maximum extra read accesses per task (each task always reads/writes
    /// one target tile; 0..=`max_reads` additional tiles are read).
    pub max_reads: usize,
    /// Size of every tile in bytes.
    pub tile_bytes: u64,
    /// `Some(n_gpus)`: tiles start resident on GPUs, round-robin over
    /// `n_gpus` devices (the data-on-device protocol of the paper's
    /// Fig. 4); `None`: tiles start in host memory.
    pub on_device: Option<usize>,
    /// Append a final flush task reading every tile (results-home barrier).
    pub flush: bool,
}

impl Default for RandomDagSpec {
    fn default() -> Self {
        RandomDagSpec {
            tasks: 24,
            handles: 8,
            max_reads: 2,
            tile_bytes: 1 << 20,
            on_device: None,
            flush: false,
        }
    }
}

/// xorshift64* — enough entropy for structural choices, zero dependencies,
/// and stable across platforms (graph shape is part of a replay seed).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Builds a seeded random task DAG: `spec.tasks` kernel tasks over
/// `spec.handles` tiles, each read-writing one pseudo-random target tile
/// and reading up to `spec.max_reads` others. Dependencies arise from the
/// usual read/write access inference, so the same `(seed, spec)` always
/// produces the same graph — a failing schedule is replayable from the
/// pair alone.
pub fn build_random_dag(seed: u64, spec: &RandomDagSpec) -> TaskGraph {
    build_random_dag_placed(seed, spec, |g| g)
}

/// [`build_random_dag`] with a relabeled initial placement: tile `i` lands
/// on GPU `place(i % n_gpus)` instead of `i % n_gpus`. The graph structure
/// (tasks, accesses, dependencies) is identical for identical seeds —
/// only the `on_device` homes move, which is what the GPU-permutation
/// metamorphic oracle varies. `place` is ignored for host placement.
pub fn build_random_dag_placed(
    seed: u64,
    spec: &RandomDagSpec,
    place: impl Fn(usize) -> usize,
) -> TaskGraph {
    assert!(spec.handles > 0 && spec.tasks > 0, "empty spec");
    // Seed 0 is a fixed point of xorshift; displace it like splitmix would.
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut g = TaskGraph::new();
    let handles: Vec<HandleId> = (0..spec.handles)
        .map(|i| match spec.on_device {
            Some(n_gpus) => g.add_data(xk_runtime::DataInfo::on_gpu(
                spec.tile_bytes,
                place(i % n_gpus.max(1)),
                format!("d{i}"),
            )),
            None => g.add_host_tile(spec.tile_bytes, false, format!("d{i}")),
        })
        .collect();
    // A small op palette: equal durations on some tasks create the event
    // ties a schedule checker wants to explore.
    let ops = [
        TileOp::Gemm { m: 256, n: 256, k: 256 },
        TileOp::Gemm { m: 384, n: 384, k: 384 },
        TileOp::Gemm { m: 256, n: 256, k: 256 },
    ];
    for t in 0..spec.tasks {
        let target = handles[(xorshift(&mut rng) as usize) % handles.len()];
        let n_reads = if spec.max_reads == 0 {
            0
        } else {
            (xorshift(&mut rng) as usize) % (spec.max_reads + 1)
        };
        let mut accesses = Vec::with_capacity(n_reads + 1);
        accesses.push(TaskAccess { handle: target, access: Access::ReadWrite });
        for _ in 0..n_reads {
            let h = handles[(xorshift(&mut rng) as usize) % handles.len()];
            if h != target && !accesses.iter().any(|a| a.handle == h) {
                accesses.push(TaskAccess { handle: h, access: Access::Read });
            }
        }
        let op = ops[(xorshift(&mut rng) as usize) % ops.len()];
        g.add_task(op, accesses, TaskLabel::tile("rnd", 't', t, 0));
    }
    if spec.flush {
        g.add_flush(&handles, "flush");
    }
    g.finalize();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_runtime::TaskId;

    #[test]
    fn csr_and_legacy_agree_on_small_gemm() {
        let nt = 4;
        let csr = build_gemm_graph_csr(nt);
        let legacy = build_gemm_graph_legacy(nt);
        assert_eq!(csr.len(), nt * nt * nt);
        assert_eq!(csr.len(), legacy.len());
        assert_eq!(csr.n_edges(), legacy.n_edges());
        for t in 0..csr.len() {
            let succs: Vec<usize> = csr.successors(TaskId(t)).iter().map(|s| s.0).collect();
            assert_eq!(succs, legacy.successors[t], "successors of task {t}");
        }
        assert!(legacy.label_bytes() > 0);
    }

    #[test]
    fn wide_dag_has_expected_shape() {
        let g = build_wide_dag(3, 8);
        assert_eq!(g.len(), 24);
        assert_eq!(g.roots().len(), 8);
    }

    #[test]
    fn random_dag_is_deterministic_per_seed() {
        let spec = RandomDagSpec::default();
        let a = build_random_dag(42, &spec);
        let b = build_random_dag(42, &spec);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.n_edges(), b.n_edges());
        for t in 0..a.len() {
            let sa: Vec<usize> = a.successors(TaskId(t)).iter().map(|s| s.0).collect();
            let sb: Vec<usize> = b.successors(TaskId(t)).iter().map(|s| s.0).collect();
            assert_eq!(sa, sb, "successors of task {t}");
        }
        // Different seeds virtually always give a different edge structure.
        let c = build_random_dag(43, &spec);
        let edges = |g: &TaskGraph| -> Vec<(usize, usize)> {
            (0..g.len())
                .flat_map(|t| {
                    g.successors(TaskId(t)).iter().map(move |s| (t, s.0)).collect::<Vec<_>>()
                })
                .collect()
        };
        assert_ne!(edges(&a), edges(&c), "seed must steer the structure");
    }

    #[test]
    fn random_dag_honors_placement_and_flush() {
        let spec = RandomDagSpec {
            tasks: 10,
            handles: 6,
            on_device: Some(4),
            flush: true,
            ..RandomDagSpec::default()
        };
        let g = build_random_dag(7, &spec);
        assert_eq!(g.len(), 11, "10 kernels + 1 flush");
        for i in 0..6 {
            let info = g.data().info(xk_runtime::HandleId(i));
            assert_eq!(
                info.initial,
                xk_topo::Device::Gpu(i % 4),
                "tile {i} placement"
            );
        }
        let host = build_random_dag(7, &RandomDagSpec { on_device: None, ..spec });
        assert!((0..6).all(|i| {
            host.data().info(xk_runtime::HandleId(i)).initial == xk_topo::Device::Host
        }));
    }
}
