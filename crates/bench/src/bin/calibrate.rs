//! Calibration dashboard: prints the headline quantities the paper reports
//! so the model can be tuned (not itself a paper figure).
//!
//! Targets (paper §I, §IV):
//!   * XKBlas DGEMM peak ≈ 56.9 TF/s (91% of 62.4), ≈ 54 TF/s at N ≈ 24576
//!   * vs cuBLAS-XT up to 2.84×, vs cuBLAS-MG 1.13×, vs Chameleon Tile 3×,
//!     vs SLATE / Chameleon LAPACK ≈ 5× (best gains at N < 40000)
//!   * Table II ablations at N ≥ 16384.

use xk_baselines::{Library, XkVariant};
use xk_bench::{best_tile_run, Table};
use xk_kernels::Routine;

fn main() {
    let topo = xk_topo::dgx1();
    let dims = [8192usize, 16384, 24576, 32768, 49152];

    let libs = [
        Library::XkBlas(XkVariant::Full),
        Library::XkBlas(XkVariant::NoHeuristic),
        Library::XkBlas(XkVariant::NoHeuristicNoTopo),
        Library::CublasXt,
        Library::CublasMg,
        Library::ChameleonTile,
        Library::ChameleonLapack,
        Library::Slate,
        Library::Dplasma,
        Library::Blasx,
    ];

    for routine in [Routine::Gemm, Routine::Syr2k, Routine::Trsm] {
        println!("== {} (TFlop/s, data-on-host) ==", routine.name());
        let mut t = Table::new(&{
            let mut h = vec!["library"];
            h.extend(dims.iter().map(|n| match n {
                8192 => "8192",
                16384 => "16384",
                24576 => "24576",
                32768 => "32768",
                _ => "49152",
            }));
            h
        });
        for lib in libs {
            if !lib.supports(routine) {
                continue;
            }
            let mut row = vec![lib.name().to_string()];
            for &n in &dims {
                match best_tile_run(lib, &topo, routine, n, false) {
                    Ok((tile, r)) => row.push(format!("{:.1} (t{})", r.tflops, tile / 1024)),
                    Err(e) => row.push(format!("{e:?}")),
                }
            }
            t.row(row);
        }
        println!("{}", t.render());
    }

    // Byte/ratio diagnostics at N=32768 GEMM.
    println!("== transfer diagnostics, GEMM N=32768 ==");
    for lib in libs {
        if !lib.supports(Routine::Gemm) {
            continue;
        }
        if let Ok((tile, r)) = best_tile_run(lib, &topo, Routine::Gemm, 32768, false) {
            println!(
                "{:>30}: t{} h2d {:6.1} GB  d2h {:6.1} GB  p2p {:6.1} GB  xfer-ratio {:4.1}%  {:5.1} TF",
                lib.name(),
                tile / 1024,
                r.bytes_h2d as f64 / 1e9,
                r.bytes_d2h as f64 / 1e9,
                r.bytes_p2p as f64 / 1e9,
                r.trace.breakdown().transfer_ratio() * 100.0,
                r.tflops
            );
        }
    }
    println!();

    // Data-on-device gain.
    println!("== XKBlas DoD vs DoH (GEMM) ==");
    for &n in &[16384usize, 24576, 32768] {
        let (_, doh) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, n, false)
                .unwrap();
        let (_, dod) =
            best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, n, true)
                .unwrap();
        println!(
            "N={n}: DoH {:.1} TF, DoD {:.1} TF, gain {:+.1}%",
            doh.tflops,
            dod.tflops,
            (dod.tflops / doh.tflops - 1.0) * 100.0
        );
    }
}
