//! Reproduces Fig. 8: performance of the TRSM+GEMM composition (block
//! size 2048) for Chameleon Tile vs XKBlas.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims: Vec<usize> = if quick {
        vec![8192, 16384, 24576]
    } else {
        vec![4096, 8192, 16384, 24576, 32768, 40960, 49152, 57344]
    };
    let t = figs::fig8_composition(&topo, &dims, 2048);
    println!("Fig. 8 — TRSM+GEMM composition (TFlop/s, block 2048, 8 GPUs)\n");
    println!("{}", t.render());
    println!("paper: XKBlas reaches 56.6 TF/s (its GEMM peak is 56.9); Chameleon 36.6 (GEMM peak 51.3)");
    let _ = write_csv("fig8_composition.csv", &t.to_csv());
}
