//! Writes `BENCH_kernels.json`: the host BLAS-3 routines under the
//! runtime-dispatched SIMD microkernel (all six routines at 256/512/1024,
//! fraction of measured microkernel peak), plus GEMM/1024 under every other
//! host-supported ISA for comparison.
//!
//! Usage: `bench_kernels [OUT.json]` (default `BENCH_kernels.json`).
//! Pin a kernel with `XK_KERNEL_ISA={auto,avx512,avx2,neon,scalar}`.

use xk_bench::kernelbench;

const REPS: usize = 5;
const PEAK_BUDGET_MS: u64 = 200;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    eprintln!(
        "kernel snapshot: {:?} x {REPS} reps under XK_KERNEL_ISA={} ...",
        kernelbench::SIZES,
        xk_kernels::selected_isa().name()
    );
    let json = kernelbench::snapshot_json(REPS, PEAK_BUDGET_MS);
    std::fs::write(&out, json.as_bytes()).expect("snapshot written");
    print!("{json}");
    eprintln!("wrote {out}");
}
