//! Reproduces Table II: maximum loss/gain of the XKBlas variants with
//! respect to baseline XKBlas for matrix dimensions >= 16384.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims = figs::dims(quick);
    let t = figs::table2_gains(&topo, &dims);
    println!("Table II — max loss/gain vs baseline XKBlas (N >= 16384)\n");
    println!("{}", t.render());
    println!("paper: DGEMM +111.7 / -43.5 / -43; DSYR2K +71.1 / -19.4 / -53.5; DTRSM +52.6 / -29.6 / -29.3 (%)");
    let _ = write_csv("table2_gains.csv", &t.to_csv());
}
