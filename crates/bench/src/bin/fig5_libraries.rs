//! Reproduces Fig. 5: the six BLAS-3 routines across the eight libraries
//! on the simulated DGX-1, data-on-host methodology.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims = figs::dims(quick);
    println!("Fig. 5 — library comparison (TFlop/s, data-on-host, 8 GPUs)");
    println!("('-' = not supported or allocation error, per the paper)\n");
    for (routine, table) in figs::fig5_libraries(&topo, &dims) {
        println!("{}", routine.name());
        println!("{}", table.render());
        let _ = write_csv(
            &format!("fig5_{}.csv", routine.name().to_lowercase()),
            &table.to_csv(),
        );
    }
}
