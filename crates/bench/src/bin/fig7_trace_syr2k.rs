//! Reproduces Fig. 7: SYR2K FP64 execution trace per GPU at N=49152 for
//! Chameleon Tile, cuBLAS-XT and XKBlas (the paper's load-imbalance view).

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 16384 } else { 49152 };
    let topo = xk_topo::dgx1();
    println!("Fig. 7 — SYR2K N={n} per-GPU time breakdown\n");
    for (lib, table, imbalance) in figs::fig7_trace_syr2k(&topo, n) {
        println!("{} (kernel-load imbalance max/mean-1 = {:.1}%)", lib.name(), imbalance * 100.0);
        println!("{}", table.render());
        let _ = write_csv(
            &format!("fig7_{}.csv", lib.name().replace(' ', "_").to_lowercase()),
            &table.to_csv(),
        );
    }
    println!("Observability (critical path verified against the makespan):");
    for (lib, summary) in figs::fig7_obs(&topo, n) {
        println!("{}:\n{summary}", lib.name());
    }
}
