//! Reproduces Fig. 3: FP64 GEMM/SYR2K/TRSM with the device-to-device and
//! topology-aware heuristics disabled, data-on-host, cuBLAS-XT reference.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims = figs::dims(quick);
    println!("Fig. 3 — impact of the heuristics (TFlop/s, data-on-host, 8 GPUs)\n");
    for (routine, table) in figs::fig3_heuristics(&topo, &dims) {
        println!("{}", routine.name());
        println!("{}", table.render());
        let _ = write_csv(
            &format!("fig3_{}.csv", routine.name().to_lowercase()),
            &table.to_csv(),
        );
    }
}
