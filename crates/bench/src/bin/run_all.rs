//! Runs every table/figure reproduction in sequence (pass --quick for the
//! reduced sweep) and writes all CSV artifacts under results/.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims = figs::dims(quick);

    println!("================ Table I / Fig. 1 ================\n");
    print!("{}", figs::table1_platform());

    println!("\n================ Fig. 2 ================\n");
    let t = figs::fig2_bandwidth(&topo);
    println!("{}", t.render());
    let _ = write_csv("fig2_bandwidth.csv", &t.to_csv());

    println!("\n================ Fig. 3 ================\n");
    for (routine, table) in figs::fig3_heuristics(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig3_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    println!("\n================ Table II ================\n");
    let t = figs::table2_gains(&topo, &dims);
    println!("{}", t.render());
    let _ = write_csv("table2_gains.csv", &t.to_csv());

    println!("\n================ Fig. 4 ================\n");
    for (routine, table) in figs::fig4_data_on_device(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig4_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    println!("\n================ Fig. 5 ================\n");
    for (routine, table) in figs::fig5_libraries(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig5_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    let n6 = if quick { 16384 } else { 32768 };
    println!("\n================ Fig. 6 (N={n6}) ================\n");
    let t = figs::fig6_trace_gemm(&topo, n6);
    println!("{}", t.render());
    let _ = write_csv("fig6_trace_gemm.csv", &t.to_csv());

    let n7 = if quick { 16384 } else { 49152 };
    println!("\n================ Fig. 7 (N={n7}) ================\n");
    for (lib, table, imb) in figs::fig7_trace_syr2k(&topo, n7) {
        println!("{} (imbalance {:.1}%)\n{}", lib.name(), imb * 100.0, table.render());
    }

    println!("\n================ Fig. 8 ================\n");
    let comp_dims: Vec<usize> = if quick { vec![8192, 16384] } else { vec![8192, 16384, 24576, 32768, 49152] };
    let t = figs::fig8_composition(&topo, &comp_dims, 2048);
    println!("{}", t.render());
    let _ = write_csv("fig8_composition.csv", &t.to_csv());

    let n9 = if quick { 16384 } else { 32768 };
    println!("\n================ Fig. 9 (N={n9}) ================\n");
    print!("{}", figs::fig9_gantt(&topo, n9, 2048, 110));
}
