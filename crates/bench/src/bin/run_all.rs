//! Runs every table/figure reproduction in sequence and writes all CSV
//! artifacts under results/.
//!
//! Flags:
//! - `--quick`  trims the dimension grid for tests/CI.
//! - `--small`  uses the paper grid truncated at N = 24576 (the
//!   `PAPER_DIMS_SMALL` sweep the benchmark snapshot times).
//! - `--serial` forces a single rayon thread and disables the run cache:
//!   the reference configuration the parallel output must match byte for
//!   byte.

use xk_bench::{figs, runcache, write_csv, PAPER_DIMS_SMALL};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let small = args.iter().any(|a| a == "--small");
    let serial = args.iter().any(|a| a == "--serial");
    if serial {
        runcache::set_global_enabled(false);
        let _ = rayon::ThreadPoolBuilder::new().num_threads(1).build_global();
    }
    let topo = xk_topo::dgx1();
    let dims = if small {
        PAPER_DIMS_SMALL.to_vec()
    } else {
        figs::dims(quick)
    };
    // The trace/composition figures use their reduced problem sizes in
    // either trimmed mode.
    let reduced = quick || small;

    println!("================ Table I / Fig. 1 ================\n");
    print!("{}", figs::table1_platform());

    println!("\n================ Fig. 2 ================\n");
    let t = figs::fig2_bandwidth(&topo);
    println!("{}", t.render());
    let _ = write_csv("fig2_bandwidth.csv", &t.to_csv());

    println!("\n================ Fig. 3 ================\n");
    for (routine, table) in figs::fig3_heuristics(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig3_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    println!("\n================ Table II ================\n");
    let t = figs::table2_gains(&topo, &dims);
    println!("{}", t.render());
    let _ = write_csv("table2_gains.csv", &t.to_csv());

    println!("\n================ Fig. 4 ================\n");
    for (routine, table) in figs::fig4_data_on_device(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig4_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    println!("\n================ Fig. 5 ================\n");
    for (routine, table) in figs::fig5_libraries(&topo, &dims) {
        println!("{}\n{}", routine.name(), table.render());
        let _ = write_csv(&format!("fig5_{}.csv", routine.name().to_lowercase()), &table.to_csv());
    }

    println!("\n================ Fabric gallery ================\n");
    // GEMM on every gallery fabric; the gallery multiplies the sweep, so
    // it runs the first two grid points only.
    let gallery_dims = &dims[..dims.len().min(2)];
    for (name, table) in figs::fabric_gallery_gemm(gallery_dims) {
        println!("{name}\n{}", table.render());
        let slug = name.split_whitespace().next().unwrap_or("fabric").replace('-', "_");
        let _ = write_csv(&format!("fabric_{slug}.csv"), &table.to_csv());
    }

    let n6 = if reduced { 16384 } else { 32768 };
    println!("\n================ Fig. 6 (N={n6}) ================\n");
    let t = figs::fig6_trace_gemm(&topo, n6);
    println!("{}", t.render());
    let _ = write_csv("fig6_trace_gemm.csv", &t.to_csv());

    let n7 = if reduced { 16384 } else { 49152 };
    println!("\n================ Fig. 7 (N={n7}) ================\n");
    for (lib, table, imb) in figs::fig7_trace_syr2k(&topo, n7) {
        println!("{} (imbalance {:.1}%)\n{}", lib.name(), imb * 100.0, table.render());
    }

    println!("\n================ Fig. 8 ================\n");
    let comp_dims: Vec<usize> = if reduced { vec![8192, 16384] } else { vec![8192, 16384, 24576, 32768, 49152] };
    let t = figs::fig8_composition(&topo, &comp_dims, 2048);
    println!("{}", t.render());
    let _ = write_csv("fig8_composition.csv", &t.to_csv());

    let n9 = if reduced { 16384 } else { 32768 };
    println!("\n================ Fig. 9 (N={n9}) ================\n");
    print!("{}", figs::fig9_gantt(&topo, n9, 2048, 110));

    // Stats go to stderr so stdout stays byte-comparable with --serial.
    if let Some(c) = runcache::global_if_enabled() {
        let s = c.stats();
        eprintln!(
            "\nrun cache: {} entries, {} hits / {} coalesced / {} misses ({:.0}% hit rate), {} rayon threads",
            c.len(),
            s.hits,
            s.coalesced,
            s.misses,
            s.hit_rate() * 100.0,
            rayon::current_num_threads()
        );
    }
}
