//! Machine-readable performance snapshot of the simulator itself.
//!
//! Times the four layers this harness optimizes — the discrete-event
//! queue, one full library simulation, the small best-tile sweep
//! (serial/uncached vs rayon-parallel/memoized), and the blocked host
//! compute kernels — and writes the numbers to `BENCH_sim.json` (or the
//! path given as the first argument).

use std::time::Instant;

use rayon::prelude::*;
use xk_baselines::{Library, XkVariant};
use xk_bench::graphgen::{build_gemm_graph_legacy, build_wide_dag, gemm_graph_shell, submit_gemm_tasks};
use xk_bench::{sweep_series, sweep_series_par, RunCache, SeriesPoint, PAPER_DIMS_SMALL};
use xk_runtime::{run_parallel, RuntimeConfig, SimExecutor, SimPrep, SimSession};
use xk_kernels::parallel::{par_fill_pattern, par_gemm, par_gemm_naive};
use xk_kernels::{
    gemm, syrk, trsm, Diag, MatMut, MatRef, Routine, Side, Trans, Uplo,
};
use xk_sim::{default_replica_threads, run_replicas, selected_backend, EventQueue, QueueBackend, SimTime};
use xk_trace::SpanKind;

const QUEUE_EVENTS: usize = 1_000_000;

/// Fig. 3's library set: the sweep the snapshot times end to end.
const SWEEP_LIBS: [Library; 4] = [
    Library::CublasXt,
    Library::XkBlas(XkVariant::Full),
    Library::XkBlas(XkVariant::NoHeuristic),
    Library::XkBlas(XkVariant::NoHeuristicNoTopo),
];

/// Wall time of one fill-then-drain pass over `QUEUE_EVENTS` events on the
/// given backend.
fn queue_fill_drain(backend: QueueBackend) -> f64 {
    let mut q = EventQueue::with_backend_capacity(backend, QUEUE_EVENTS);
    let t0 = Instant::now();
    // Knuth-hash timestamps: scattered but reproducible.
    q.push_batch((0..QUEUE_EVENTS).map(|i| {
        let t = (i.wrapping_mul(2654435761) % 1_000_003) as f64 * 1e-6;
        (SimTime::new(t), i as u32)
    }));
    let mut checksum = 0u64;
    while let Some((_, e)) = q.pop() {
        checksum = checksum.wrapping_add(e as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        checksum,
        (QUEUE_EVENTS as u64 - 1) * QUEUE_EVENTS as u64 / 2
    );
    secs
}

/// Wall time of the classic hold model: `pending` events stay queued while
/// `total` events transit as pop-min / push-future pairs. `burst > 1`
/// schedules groups of that many same-time events — the tie pattern the
/// simulator's `pop_tied` exploration produces — which a binary heap pays
/// a full sift per event for.
fn queue_hold(backend: QueueBackend, pending: usize, burst: usize, total: u64) -> f64 {
    let mut rng = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut q = EventQueue::with_backend_capacity(backend, pending);
    for g in 0..pending / burst {
        let t = SimTime::new(next());
        for i in 0..burst {
            q.push(t, (g * burst + i) as u32);
        }
    }
    let t0 = Instant::now();
    let mut done = 0u64;
    let mut checksum = 0u64;
    while done < total {
        let (t, e) = q.pop().expect("hold keeps the queue non-empty");
        checksum = checksum.wrapping_add(e as u64);
        let mut n = 1u64;
        while q.peek_time() == Some(t) {
            let (_, e) = q.pop().expect("peeked");
            checksum = checksum.wrapping_add(e as u64);
            n += 1;
        }
        done += n;
        let nt = SimTime::new(t.seconds() + next());
        for i in 0..n {
            q.push(nt, i as u32);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(checksum);
    secs
}

/// Heap-vs-calendar head-to-head over the three shapes the simulator
/// exercises; each entry carries both timings and the resulting speedup.
fn bench_event_queue() -> serde_json::Value {
    let shape = |name: &str, events: u64, f: &dyn Fn(QueueBackend) -> f64| {
        let heap = f(QueueBackend::Heap);
        let calendar = f(QueueBackend::Calendar);
        serde_json::json!({
            "shape": name,
            "events": events,
            "heap_seconds": heap,
            "heap_events_per_sec": events as f64 / heap,
            "calendar_seconds": calendar,
            "calendar_events_per_sec": events as f64 / calendar,
            "calendar_speedup": heap / calendar,
        })
    };
    const HOLD_EVENTS: u64 = 2_000_000;
    serde_json::json!({
        "default_backend": format!("{:?}", selected_backend()).to_lowercase(),
        "fill_drain_1e6": shape("fill_drain_1e6", 2 * QUEUE_EVENTS as u64, &|b| {
            queue_fill_drain(b)
        }),
        "hold_1e4": shape("hold_1e4", HOLD_EVENTS, &|b| queue_hold(b, 10_000, 1, HOLD_EVENTS)),
        "hold_1e6": shape("hold_1e6", HOLD_EVENTS, &|b| {
            queue_hold(b, 1_000_000, 1, HOLD_EVENTS)
        }),
        "tie_burst_1e5": shape("tie_burst_1e5", HOLD_EVENTS, &|b| {
            queue_hold(b, 100_000, 16, HOLD_EVENTS)
        }),
    })
}

/// Cross-seed batch layer: K replicas of one ~4k-task GEMM simulation,
/// serial per-replica prep vs the shared-[`SimPrep`] replica driver.
fn bench_batch_replicas(topo: &xk_topo::FabricSpec) -> serde_json::Value {
    const NT: usize = 16; // 16^3 = 4096 tasks
    const REPLICAS: usize = 24;
    let (mut g, handles) = gemm_graph_shell(NT);
    submit_gemm_tasks(&mut g, &handles, NT);
    let cfg = RuntimeConfig::xkblas();

    let t0 = Instant::now();
    let serial: Vec<u64> = (0..REPLICAS)
        .map(|_| SimExecutor::new(&g, topo, &cfg).run().makespan.to_bits())
        .collect();
    let serial_secs = t0.elapsed().as_secs_f64();

    // Thread sweep: the same batch at 1, 2, 4 and all-cores workers (0),
    // each checked bit-identical against the serial reference.
    let prep = SimPrep::new(&g);
    let mut sweep = Vec::new();
    let mut default_batch_secs = f64::NAN;
    for threads in [1usize, 2, 4, 0] {
        let t0 = Instant::now();
        let batched: Vec<u64> = run_replicas(REPLICAS, threads, |_| {
            SimExecutor::with_prep(&g, topo, &cfg, &prep)
                .run()
                .makespan
                .to_bits()
        });
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(serial, batched, "batch replicas diverged from serial runs");
        if threads == 0 {
            default_batch_secs = secs;
        }
        sweep.push(serde_json::json!({
            "threads": threads,
            "effective_threads": if threads == 0 { default_replica_threads() } else { threads },
            "seconds": secs,
            "runs_per_sec": REPLICAS as f64 / secs,
            "speedup_vs_serial": serial_secs / secs,
        }));
    }

    serde_json::json!({
        "replicas": REPLICAS,
        "tasks_per_replica": NT * NT * NT,
        "threads": default_replica_threads(),
        "serial_seconds": serial_secs,
        "serial_runs_per_sec": REPLICAS as f64 / serial_secs,
        "batch_seconds": default_batch_secs,
        "batch_runs_per_sec": REPLICAS as f64 / default_batch_secs,
        "speedup": serial_secs / default_batch_secs,
        "thread_sweep": sweep,
    })
}

/// Spans/second of one full GEMM simulation.
fn bench_gemm_sim(topo: &xk_topo::FabricSpec, n: usize, tile: usize) -> (usize, f64, f64) {
    let params = xk_baselines::RunParams {
        routine: Routine::Gemm,
        n,
        tile,
        data_on_device: false,
    };
    let t0 = Instant::now();
    let r = xk_baselines::run(Library::XkBlas(XkVariant::Full), topo, &params)
        .expect("xkblas gemm runs");
    let secs = t0.elapsed().as_secs_f64();
    let spans = r.trace.len();
    (spans, secs, spans as f64 / secs)
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// GFLOP/s of the sequential blocked kernels (`gemm`, `syrk`, `trsm`) at
/// square sizes, plus blocked vs pre-blocking parallel GEMM at `n = 1024`.
fn bench_kernels() -> serde_json::Value {
    const REPS: usize = 3;
    let gflops = |routine: Routine, n: usize, secs: f64| {
        routine.flops_square(n as u64) / secs / 1e9
    };

    let mut per_size = Vec::new();
    for &n in &[256usize, 512, 1024] {
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n * n];
        par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 101);
        par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 102);
        let mut c = vec![0.0f64; n * n];

        let gemm_secs = best_secs(REPS, || {
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                MatRef::from_slice(&b, n, n, n),
                0.5,
                MatMut::from_slice(&mut c, n, n, n),
            );
        });

        let syrk_secs = best_secs(REPS, || {
            syrk(
                Uplo::Lower,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                0.5,
                MatMut::from_slice(&mut c, n, n, n),
            );
        });

        // Dominant diagonal keeps the solve well-conditioned over reps.
        let mut tri = a.clone();
        for i in 0..n {
            tri[i + i * n] = 4.0;
        }
        let trsm_secs = best_secs(REPS, || {
            c.copy_from_slice(&b);
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::NonUnit,
                1.0,
                MatRef::from_slice(&tri, n, n, n),
                MatMut::from_slice(&mut c, n, n, n),
            );
        });

        per_size.push(serde_json::json!({
            "n": n,
            "gemm_gflops": gflops(Routine::Gemm, n, gemm_secs),
            "syrk_gflops": gflops(Routine::Syrk, n, syrk_secs),
            "trsm_gflops": gflops(Routine::Trsm, n, trsm_secs),
        }));
    }

    // Blocked vs pre-blocking parallel GEMM at the acceptance size.
    let n = 1024usize;
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 103);
    par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 104);
    let mut c = vec![0.0f64; n * n];
    let blocked_secs = best_secs(REPS, || {
        par_gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, n, n, n),
            MatRef::from_slice(&b, n, n, n),
            0.0,
            MatMut::from_slice(&mut c, n, n, n),
        );
    });
    let naive_secs = best_secs(REPS, || {
        par_gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, n, n, n),
            MatRef::from_slice(&b, n, n, n),
            0.0,
            MatMut::from_slice(&mut c, n, n, n),
        );
    });

    serde_json::json!({
        "reps": REPS,
        "detected_isa": xk_kernels::detected_isa().name(),
        "dispatched_isa": xk_kernels::selected_isa().name(),
        "microkernel": kernel_shape_json(),
        "sequential": per_size,
        "par_gemm_1024": {
            "blocked_gflops": gflops(Routine::Gemm, n, blocked_secs),
            "naive_gflops": gflops(Routine::Gemm, n, naive_secs),
            "speedup_vs_naive": naive_secs / blocked_secs,
        },
    })
}

/// The dispatched microkernel's shape, for the snapshot header.
fn kernel_shape_json() -> serde_json::Value {
    let s = xk_kernels::kernel_shape::<f64>(xk_kernels::selected_isa());
    serde_json::json!({
        "name": s.name,
        "mr": s.mr,
        "nr": s.nr,
        "kc": s.kc,
        "mc": s.mc,
        "nc": s.nc,
    })
}

/// Build rate of a ~110k-task tiled-GEMM graph: the seed's HashMap +
/// per-task-Vec + eager-label representation vs the CSR fast path.
fn bench_graph_build() -> serde_json::Value {
    const REPS: usize = 3;
    // 48³ = 110,592 tasks — the paper's N=49152 / tile-1024 sweep point.
    let nt = 48;
    let tasks = nt * nt * nt;

    let legacy_secs = best_secs(REPS, || {
        let g = build_gemm_graph_legacy(nt);
        assert_eq!(g.len(), tasks);
    });
    // Tile registration is identical in both representations and stays
    // outside the timed region (the legacy replica doesn't model it).
    let mut bytes_per_task = 0.0;
    let mut csr_secs = f64::INFINITY;
    for _ in 0..REPS {
        let (mut g, handles) = gemm_graph_shell(nt);
        let t0 = Instant::now();
        submit_gemm_tasks(&mut g, &handles, nt);
        csr_secs = csr_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(g.len(), tasks);
        bytes_per_task = g.memory_bytes() as f64 / tasks as f64;
    }

    serde_json::json!({
        "tasks": tasks,
        "reps": REPS,
        "legacy_seconds": legacy_secs,
        "legacy_tasks_per_sec": tasks as f64 / legacy_secs,
        "csr_seconds": csr_secs,
        "csr_tasks_per_sec": tasks as f64 / csr_secs,
        "speedup": legacy_secs / csr_secs,
        "bytes_per_task": bytes_per_task,
    })
}

/// Raw task throughput of the parking work-stealing executor on a wide
/// (100-layer × 1000-task) bodyless DAG: pure claim/release overhead.
fn bench_par_exec() -> serde_json::Value {
    const LAYERS: usize = 100;
    const WIDTH: usize = 1000;
    let tasks = LAYERS * WIDTH;
    let mut g = build_wide_dag(LAYERS, WIDTH);
    let t0 = Instant::now();
    let out = run_parallel(&mut g, 0);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(out.tasks_run, tasks);
    serde_json::json!({
        "tasks": tasks,
        "layers": LAYERS,
        "width": WIDTH,
        "threads": out.threads,
        "seconds": secs,
        "tasks_per_sec": tasks as f64 / secs,
        "parks": out.parks,
    })
}

/// Observability digest per routine: top-3 hot links and critical-path
/// composition of the XKBlas run (the critical-path invariant is asserted
/// on every entry).
fn bench_obs(topo: &xk_topo::FabricSpec) -> serde_json::Value {
    let per_routine: Vec<serde_json::Value> = Routine::ALL
        .into_iter()
        .map(|routine| {
            let params = xk_baselines::RunParams {
                routine,
                n: 8192,
                tile: 2048,
                data_on_device: false,
            };
            let r = xk_baselines::run(Library::XkBlas(XkVariant::Full), topo, &params)
                .expect("xkblas runs every routine");
            let obs = r.obs.expect("xkblas records observability");
            let cp = obs.critical_path.as_ref().expect("full level records the critical path");
            assert_eq!(
                cp.length.to_bits(),
                obs.makespan.to_bits(),
                "{routine:?}: critical path != makespan"
            );
            serde_json::json!({
                "routine": routine.name(),
                "n": params.n,
                "tile": params.tile,
                "makespan_s": obs.makespan,
                "hot_links": obs
                    .hot_links(3)
                    .iter()
                    .map(|l| serde_json::json!({
                        "name": l.name,
                        "busy_s": l.busy,
                        "utilization": l.utilization,
                        "contention_wait_s": l.wait,
                        "bytes": l.bytes,
                        "cp_seconds": l.cp_seconds,
                    }))
                    .collect::<Vec<_>>(),
                "critical_path": {
                    "length_s": cp.length,
                    "kernel_s": cp.kind_seconds(SpanKind::Kernel),
                    "h2d_s": cp.kind_seconds(SpanKind::H2D),
                    "d2h_s": cp.kind_seconds(SpanKind::D2H),
                    "p2p_s": cp.kind_seconds(SpanKind::P2P),
                    "runtime_gap_s": cp.runtime_gap,
                    "spans": cp.total_segments,
                },
            })
        })
        .collect();
    serde_json::json!(per_routine)
}

/// GEMM GFLOP/s per gallery fabric × heuristic variant, one fixed problem
/// and tile (no tile search), so the numbers are cheap and directly
/// comparable across fabrics. This is where a topology-blind reading of
/// the snapshot would miss that the heuristics rank differently on an
/// NVSwitch or PCIe-only machine than on the DGX-1.
fn bench_fabrics() -> serde_json::Value {
    const N: usize = 8192;
    const TILE: usize = 2048;
    let per_fabric: Vec<serde_json::Value> = xk_topo::fabrics::gallery()
        .iter()
        .map(|topo| {
            let gflops = |v: XkVariant| {
                let params = xk_baselines::RunParams {
                    routine: Routine::Gemm,
                    n: N,
                    tile: TILE,
                    data_on_device: false,
                };
                let r = xk_baselines::run(Library::XkBlas(v), topo, &params)
                    .expect("xkblas runs on every gallery fabric");
                r.tflops * 1000.0
            };
            serde_json::json!({
                "fabric": topo.name(),
                "fingerprint": format!("{:016x}", topo.fingerprint()),
                "n_gpus": topo.n_gpus(),
                "n_nodes": topo.n_nodes(),
                "gemm_gflops": {
                    "full": gflops(XkVariant::Full),
                    "no_heuristic": gflops(XkVariant::NoHeuristic),
                    "no_heuristic_no_topo": gflops(XkVariant::NoHeuristicNoTopo),
                },
            })
        })
        .collect();
    serde_json::json!({ "n": N, "tile": TILE, "per_fabric": per_fabric })
}

/// Optimality audit: the schedule-free LP makespan lower bound against the
/// simulated makespan per routine × gallery fabric × heuristic variant.
/// Every cell asserts a positive finite bound and a finite non-negative
/// gap — the snapshot doubles as a physics check of the DES. A sampled
/// Shapley attribution of the DGX-1 NVLink mesh on the GEMM graph rides
/// along (which physical links buy the throughput).
fn bench_optimality() -> serde_json::Value {
    const N: usize = 8192;
    const TILE: usize = 2048;
    const VARIANTS: [(&str, XkVariant); 3] = [
        ("full", XkVariant::Full),
        ("no_heuristic", XkVariant::NoHeuristic),
        ("no_heuristic_no_topo", XkVariant::NoHeuristicNoTopo),
    ];
    let per_fabric: Vec<serde_json::Value> = xk_topo::fabrics::gallery()
        .iter()
        .map(|topo| {
            let per_routine: Vec<serde_json::Value> = Routine::ALL
                .into_iter()
                .map(|routine| {
                    let params = xk_baselines::RunParams {
                        routine,
                        n: N,
                        tile: TILE,
                        data_on_device: false,
                    };
                    let variants: Vec<serde_json::Value> = VARIANTS
                        .iter()
                        .map(|&(vname, v)| {
                            let cfg = v.runtime_config();
                            let g = xk_baselines::build_run_graph(topo, &params, &cfg, false);
                            let run = SimSession::on(topo).config(cfg).run_bounded(&g);
                            let bound = run.lower_bound().expect("bounded run carries its bound");
                            assert!(
                                bound.total > 0.0 && bound.total.is_finite(),
                                "{} {} {vname}: degenerate bound {bound:?}",
                                topo.name(),
                                routine.name(),
                            );
                            let gap = run.optimality_gap().expect("bound is positive");
                            assert!(
                                gap >= 0.0 && gap.is_finite(),
                                "{} {} {vname}: makespan {} beats the lower bound {}",
                                topo.name(),
                                routine.name(),
                                run.outcome().makespan,
                                bound.total,
                            );
                            serde_json::json!({
                                "variant": vname,
                                "makespan_s": run.outcome().makespan,
                                "bound_s": bound.total,
                                "critical_path_s": bound.critical_path,
                                "link_lp_s": bound.link_lp,
                                "compute_s": bound.compute,
                                "lp_iterations": bound.lp_iterations,
                                "gap": gap,
                            })
                        })
                        .collect();
                    serde_json::json!({ "routine": routine.name(), "variants": variants })
                })
                .collect();
            serde_json::json!({
                "fabric": topo.name(),
                "n_gpus": topo.n_gpus(),
                "per_routine": per_routine,
            })
        })
        .collect();

    // Sampled Shapley attribution (24 permutations, fixed seed) of the
    // DGX-1 NVLink mesh under the full-heuristics GEMM run.
    let topo = xk_topo::dgx1();
    let params = xk_baselines::RunParams {
        routine: Routine::Gemm,
        n: N,
        tile: TILE,
        data_on_device: false,
    };
    let cfg = XkVariant::Full.runtime_config();
    let g = xk_baselines::build_run_graph(&topo, &params, &cfg, false);
    let attr = SimSession::on(&topo).config(cfg).attribute_links(&g, 24, 7);
    let attribution = serde_json::json!({
        "fabric": topo.name(),
        "routine": "gemm",
        "exact": attr.exact,
        "evaluations": attr.evaluations,
        "full_gflops": attr.full_value,
        "baseline_gflops": attr.baseline_value,
        "mesh_gflops": attr.mesh_value(),
        "links": attr
            .links
            .iter()
            .map(|l| serde_json::json!({
                "a": l.a,
                "b": l.b,
                "class": l.class.label(),
                "gflops": l.value,
                "share": l.share,
            }))
            .collect::<Vec<_>>(),
    });

    serde_json::json!({
        "n": N,
        "tile": TILE,
        "per_fabric": per_fabric,
        "attribution": attribution,
    })
}

fn series_equal(a: &[Vec<SeriesPoint>], b: &[Vec<SeriesPoint>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(sa, sb)| {
            sa.len() == sb.len()
                && sa.iter().zip(sb).all(|(pa, pb)| {
                    pa.n == pb.n
                        && pa.tile == pb.tile
                        && pa.tflops.map(f64::to_bits) == pb.tflops.map(f64::to_bits)
                })
        })
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sim.json".to_string());
    let topo = xk_topo::dgx1();

    eprintln!("event queue: heap vs calendar over {QUEUE_EVENTS}-event shapes ...");
    let event_queue = bench_event_queue();

    eprintln!("batch replicas: serial vs shared-prep driver ...");
    let batch_replicas = bench_batch_replicas(&topo);

    eprintln!("single GEMM simulation ...");
    let (spans, sim_secs, spans_per_sec) = bench_gemm_sim(&topo, 16384, 2048);

    eprintln!(
        "small sweep ({} libraries x {:?}), serial reference ...",
        SWEEP_LIBS.len(),
        PAPER_DIMS_SMALL
    );
    let t0 = Instant::now();
    let serial: Vec<Vec<SeriesPoint>> = SWEEP_LIBS
        .iter()
        .map(|&lib| sweep_series(lib, &topo, Routine::Gemm, &PAPER_DIMS_SMALL, false))
        .collect();
    let serial_secs = t0.elapsed().as_secs_f64();

    eprintln!("small sweep, parallel + memoized (cold cache) ...");
    let cache = RunCache::new();
    let t0 = Instant::now();
    let parallel: Vec<Vec<SeriesPoint>> = SWEEP_LIBS
        .par_iter()
        .map(|&lib| sweep_series_par(lib, &topo, Routine::Gemm, &PAPER_DIMS_SMALL, false, Some(&cache)))
        .collect();
    let parallel_secs = t0.elapsed().as_secs_f64();
    let identical = series_equal(&serial, &parallel);
    assert!(identical, "parallel sweep diverged from the serial reference");

    eprintln!("host compute kernels (gemm/syrk/trsm GFLOP/s) ...");
    let kernels = bench_kernels();

    eprintln!("graph build rate (legacy vs CSR, ~110k tasks) ...");
    let graph = bench_graph_build();

    eprintln!("parallel executor throughput (wide bodyless DAG) ...");
    let par_exec = bench_par_exec();

    eprintln!("observability digest (per-routine hot links + critical path) ...");
    let obs = bench_obs(&topo);

    eprintln!("fabric gallery (GEMM GFLOP/s per fabric x heuristic) ...");
    let fabrics = bench_fabrics();

    eprintln!("optimality audit (LP lower bound vs makespan + link attribution) ...");
    let optimality = bench_optimality();

    eprintln!("small sweep, warm cache ...");
    let t0 = Instant::now();
    let warm: Vec<Vec<SeriesPoint>> = SWEEP_LIBS
        .par_iter()
        .map(|&lib| sweep_series_par(lib, &topo, Routine::Gemm, &PAPER_DIMS_SMALL, false, Some(&cache)))
        .collect();
    let warm_secs = t0.elapsed().as_secs_f64();
    assert!(series_equal(&parallel, &warm));
    let stats = cache.stats();

    let snapshot = serde_json::json!({
        "event_queue": event_queue,
        "batch_replicas": batch_replicas,
        "gemm_sim": {
            "n": 16384,
            "tile": 2048,
            "spans": spans,
            "seconds": sim_secs,
            "spans_per_sec": spans_per_sec,
        },
        "small_sweep": {
            "libraries": SWEEP_LIBS.len(),
            "dims": PAPER_DIMS_SMALL,
            "routine": "gemm",
            "serial_seconds": serial_secs,
            "parallel_seconds": parallel_secs,
            "speedup": serial_secs / parallel_secs,
            "warm_cache_seconds": warm_secs,
            "series_identical_to_serial": identical,
        },
        "kernels": kernels,
        "graph": graph,
        "par_exec": par_exec,
        "obs": obs,
        "fabrics": fabrics,
        "optimality": optimality,
        "run_cache": {
            "entries": cache.len(),
            "shards": cache.sharded().n_shards(),
            "hits": stats.hits,
            "coalesced": stats.coalesced,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate(),
        },
        "rayon_threads": rayon::current_num_threads(),
    });
    let pretty = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
    std::fs::write(&out, pretty.as_bytes()).expect("snapshot written");
    println!("{pretty}");
    eprintln!("wrote {out}");

    // The dedicated kernel/ISA snapshot rides along: same numbers the
    // standalone `bench_kernels` binary produces.
    let kernels_out = "BENCH_kernels.json";
    eprintln!("kernel/ISA snapshot ...");
    std::fs::write(
        kernels_out,
        xk_bench::kernelbench::snapshot_json(3, 200).as_bytes(),
    )
    .expect("kernel snapshot written");
    eprintln!("wrote {kernels_out}");
}
