//! Reproduces Fig. 9: Gantt chart of the TRSM+GEMM composition at
//! N=32768, block size 2048 — XKBlas composes without synchronization
//! gaps, Chameleon shows an inter-call hole.

use xk_bench::figs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 16384 } else { 32768 };
    let topo = xk_topo::dgx1();
    println!("Fig. 9 — composition Gantt (N={n}, block 2048)\n");
    print!("{}", figs::fig9_gantt(&topo, n, 2048, 110));
    match figs::fig9_export_traces(&topo, n, 2048) {
        Ok(paths) => {
            for p in paths {
                println!("perfetto trace: {} (open in ui.perfetto.dev)", p.display());
            }
        }
        Err(e) => eprintln!("trace export failed: {e}"),
    }
}
