//! Reproduces Fig. 4: data-on-device (2D block-cyclic, (4,2) grid, tile =
//! ceil(N / (2*#gpus))) against the data-on-host references.

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = xk_topo::dgx1();
    let dims = figs::dims(quick);
    println!("Fig. 4 — data-on-device vs data-on-host (TFlop/s, 8 GPUs)\n");
    for (routine, table) in figs::fig4_data_on_device(&topo, &dims) {
        println!("{}", routine.name());
        println!("{}", table.render());
        let _ = write_csv(
            &format!("fig4_{}.csv", routine.name().to_lowercase()),
            &table.to_csv(),
        );
    }
}
