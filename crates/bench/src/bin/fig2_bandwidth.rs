//! Reproduces Fig. 2: the GPU↔GPU bandwidth matrix (GB/s), measured by
//! timing 64 MiB point-to-point transfers on the idle simulated machine.

use xk_bench::write_csv;

fn main() {
    let topo = xk_topo::dgx1();
    let t = xk_bench::figs::fig2_bandwidth(&topo);
    println!("Fig. 2 — bandwidth (GB/s) between GPUs (simulated DGX-1)");
    println!("{}", t.render());
    println!("paper anchors: x2 NVLink ~96.4, x1 NVLink ~48.4, PCIe ~17.1, self ~747");
    if let Ok(p) = write_csv("fig2_bandwidth.csv", &t.to_csv()) {
        println!("csv: {}", p.display());
    }
}
