//! Reproduces Fig. 6: cumulative GPU time and normalized per-kind ratio of
//! GEMM FP64 at N=32768 across libraries (paper: XKBlas ~25.4% transfers,
//! Chameleon Tile ~41.2%).

use xk_bench::figs;
use xk_bench::write_csv;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 16384 } else { 32768 };
    let topo = xk_topo::dgx1();
    let t = figs::fig6_trace_gemm(&topo, n);
    println!("Fig. 6 — GEMM N={n} cumulative execution time / normalized ratio\n");
    println!("{}", t.render());
    println!("Observability (critical path verified against the makespan):");
    for (lib, summary) in figs::fig6_obs(&topo, n) {
        println!("{}:\n{summary}", lib.name());
    }
    let _ = write_csv("fig6_trace_gemm.csv", &t.to_csv());
}
