//! Reproduces Table I and Fig. 1: the modelled platform description.

fn main() {
    print!("{}", xk_bench::figs::table1_platform());
}
