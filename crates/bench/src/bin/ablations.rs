//! Ablations of the reproduction's own design choices (beyond the paper's
//! Fig. 3): prefetch depth/policy, scheduler, task overhead — the knobs
//! DESIGN.md calls out. Each sweep isolates one knob on DGEMM data-on-host.
//!
//! Every configuration simulates independently, so each knob sweep fans its
//! values over the rayon pool; rows are collected in value order, so the
//! printed tables are identical to the serial ones.

use rayon::prelude::*;
use xk_bench::Table;
use xk_kernels::Routine;
use xk_runtime::{RuntimeConfig, SchedulerKind};
use xkblas_core::{Context, Matrix};

fn run_with(cfg: RuntimeConfig, n: usize, tile: usize) -> f64 {
    let topo = xk_topo::dgx1();
    let mut ctx = Context::<f64>::new(topo, cfg, tile);
    ctx.set_simulation_only(true);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    xkblas_core::gemm_async(&mut ctx, xkblas_core::Trans::No, xkblas_core::Trans::No, 1.0, &a, &b, 0.5, &c);
    ctx.memory_coherent_async(&c);
    let sim = ctx.run_simulated();
    sim.tflops(Routine::Gemm.flops_square(n as u64))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, tile) = if quick { (16384, 2048) } else { (24576, 2048) };
    println!("Ablations on DGEMM N={n}, tile {tile}, data-on-host (TFlop/s)\n");

    // (1) In-flight window depth. With assignment-time prefetch the window
    // only gates kernels (which serialize anyway), so this sweep uses
    // launch-time fetching, where the window is the pipeline depth.
    {
        let mut t = Table::new(&["window", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [1usize, 2, 4, 8, 16, 32]
            .par_iter()
            .map(|&w| {
                let mut cfg = RuntimeConfig::xkblas();
                cfg.window = w;
                cfg.prefetch_at_assign = false;
                vec![w.to_string(), format!("{:.2}", run_with(cfg, n, tile))]
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        println!("window depth (launch-time fetching)\n{}", t.render());
    }

    // (2) Prefetch at assignment vs at launch.
    {
        let mut t = Table::new(&["prefetch", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [("at assignment (XKaapi)", true), ("at launch (StarPU-like)", false)]
            .par_iter()
            .map(|&(name, at_assign)| {
                let mut cfg = RuntimeConfig::xkblas();
                cfg.prefetch_at_assign = at_assign;
                vec![name.to_string(), format!("{:.2}", run_with(cfg, n, tile))]
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        println!("prefetch policy\n{}", t.render());
    }

    // (3) Scheduler.
    {
        let mut t = Table::new(&["scheduler", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [
            ("locality work stealing", SchedulerKind::LocalityWorkStealing),
            ("dmdas", SchedulerKind::Dmdas),
            ("static owner", SchedulerKind::StaticOwner),
            ("round robin", SchedulerKind::RoundRobin),
        ]
        .par_iter()
        .map(|&(name, s)| {
            let cfg = RuntimeConfig::xkblas().with_scheduler(s);
            vec![name.to_string(), format!("{:.2}", run_with(cfg, n, tile))]
        })
        .collect();
        for row in rows {
            t.row(row);
        }
        println!("scheduler\n{}", t.render());
    }

    // (4) Per-task submission overhead — at a fine tile size where the
    // task count makes the serial submission thread visible.
    {
        let fine = tile / 4;
        let mut t = Table::new(&["task overhead", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [0.0f64, 6.0, 20.0, 60.0, 200.0]
            .par_iter()
            .map(|&us| {
                let mut cfg = RuntimeConfig::xkblas();
                cfg.task_overhead = us * 1e-6;
                vec![format!("{us} us"), format!("{:.2}", run_with(cfg, n, fine))]
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        println!("task creation/scheduling overhead (tile {fine})\n{}", t.render());
    }

    // (5) Input caching — measured without D2D so that every re-read hits
    // the host (the PaRSEC-like configuration of DESIGN.md §6).
    {
        let mut t = Table::new(&["software cache", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [("inputs cached", true), ("inputs re-read per task", false)]
            .par_iter()
            .map(|&(name, cache)| {
                let mut cfg = RuntimeConfig::xkblas();
                cfg.heuristics = xk_runtime::Heuristics::host_only();
                cfg.prefetch_at_assign = false;
                cfg.window = 4;
                cfg.cache_inputs = cache;
                vec![name.to_string(), format!("{:.2}", run_with(cfg, n, tile))]
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        println!("input caching (host-staged transfers)\n{}", t.render());
    }

    // (6) Eager flush-back.
    {
        let mut t = Table::new(&["write-back policy", "TFlop/s"]);
        let rows: Vec<Vec<String>> = [("lazy (explicit coherency)", false), ("eager per final tile", true)]
            .par_iter()
            .map(|&(name, eager)| {
                let mut cfg = RuntimeConfig::xkblas();
                cfg.eager_flush = eager;
                vec![name.to_string(), format!("{:.2}", run_with(cfg, n, tile))]
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        println!("write-back policy\n{}", t.render());
    }
}
