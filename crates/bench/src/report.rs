//! Table/CSV rendering of reproduction results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table printer.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                let _ = write!(line, "{:>width$}  ", cells[c], width = widths[c]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a result artifact (CSV, exported trace JSON, ...) under
/// `results/`, creating the directory. Failures come back as the
/// workspace-wide [`xk_runtime::Error::Io`] carrying the path that broke.
pub fn write_result(name: &str, content: &str) -> Result<std::path::PathBuf, xk_runtime::Error> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| xk_runtime::Error::io(dir.display().to_string(), e))?;
    let path = dir.join(name);
    std::fs::write(&path, content)
        .map_err(|e| xk_runtime::Error::io(path.display().to_string(), e))?;
    Ok(path)
}

/// Writes CSV content under `results/` (see [`write_result`]).
pub fn write_csv(name: &str, content: &str) -> Result<std::path::PathBuf, xk_runtime::Error> {
    write_result(name, content)
}

/// Formats an optional TFlop/s value ("-" when absent, e.g. OOM).
pub fn fmt_tflops(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["N", "TFlops"]);
        t.row(vec!["4096".into(), "12.5".into()]);
        t.row(vec!["49152".into(), "56.90".into()]);
        let s = t.render();
        assert!(s.contains("N"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn fmt_tflops_handles_none() {
        assert_eq!(fmt_tflops(None), "-");
        assert_eq!(fmt_tflops(Some(1.234)), "1.23");
    }
}
