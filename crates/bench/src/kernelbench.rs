//! Host-kernel ISA benchmark: per-routine GFLOP/s under the dispatched
//! SIMD microkernel, plus fraction of the measured microkernel peak.
//!
//! The JSON is hand-rolled (no serde) so this module — unlike the rest of
//! the harness — also builds in minimal offline environments, and the
//! `bench_kernels` binary can regenerate `BENCH_kernels.json` anywhere the
//! kernels crate itself compiles.

use std::time::Instant;

use xk_kernels::parallel::par_fill_pattern;
use xk_kernels::simd::{microkernel_peak_gflops, supported_isas};
use xk_kernels::{
    detected_isa, gemm, kernel_shape, selected_isa, symm, syr2k, syrk, trmm, trsm, Diag, Isa,
    MatMut, MatRef, Routine, Side, Trans, Uplo, ISA_ENV,
};

/// Problem sizes reported per routine (the repo's serial acceptance sizes).
pub const SIZES: [usize; 3] = [256, 512, 1024];

/// GFLOP/s of one routine at all [`SIZES`], best of `reps`.
#[derive(Debug, Clone)]
pub struct RoutinePerf {
    /// Which BLAS-3 routine was timed.
    pub routine: Routine,
    /// `gflops[i]` is the best-of-reps rate at `SIZES[i]`.
    pub gflops: [f64; 3],
}

/// Everything the kernel snapshot records for one ISA.
#[derive(Debug, Clone)]
pub struct IsaPerf {
    /// The ISA these rates were measured under (env-pinned).
    pub isa: Isa,
    /// Microkernel-only peak (packed L1-resident panels, no packing cost).
    pub peak_gflops: f64,
    /// Per-routine rates at [`SIZES`].
    pub routines: Vec<RoutinePerf>,
}

fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times all six routines at [`SIZES`] under whatever ISA is currently
/// selected by the dispatcher.
pub fn measure_routines(reps: usize) -> Vec<RoutinePerf> {
    measure_routines_at(reps, SIZES)
}

/// [`measure_routines`] at caller-chosen sizes (tests use tiny ones).
pub fn measure_routines_at(reps: usize, sizes: [usize; 3]) -> Vec<RoutinePerf> {
    Routine::ALL
        .into_iter()
        .map(|routine| {
            let mut gflops = [0.0; 3];
            for (slot, &n) in gflops.iter_mut().zip(sizes.iter()) {
                let mut a = vec![0.0f64; n * n];
                let mut b = vec![0.0f64; n * n];
                par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 201);
                par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 202);
                let mut c = vec![0.0f64; n * n];
                // Dominant diagonal keeps trsm well-conditioned over reps.
                let mut tri = a.clone();
                for i in 0..n {
                    tri[i + i * n] = 4.0;
                }
                let ar = || MatRef::from_slice(&a, n, n, n);
                let br = || MatRef::from_slice(&b, n, n, n);
                let trir = || MatRef::from_slice(&tri, n, n, n);

                let secs = match routine {
                    Routine::Gemm => best_secs(reps, || {
                        gemm(Trans::No, Trans::No, 1.0, ar(), br(), 0.5,
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                    Routine::Symm => best_secs(reps, || {
                        symm(Side::Left, Uplo::Lower, 1.0, ar(), br(), 0.5,
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                    Routine::Syrk => best_secs(reps, || {
                        syrk(Uplo::Lower, Trans::No, 1.0, ar(), 0.5,
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                    Routine::Syr2k => best_secs(reps, || {
                        syr2k(Uplo::Lower, Trans::No, 1.0, ar(), br(), 0.5,
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                    Routine::Trmm => best_secs(reps, || {
                        c.copy_from_slice(&b);
                        trmm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, trir(),
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                    Routine::Trsm => best_secs(reps, || {
                        c.copy_from_slice(&b);
                        trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, trir(),
                            MatMut::from_slice(&mut c, n, n, n));
                    }),
                };
                *slot = routine.flops_square(n as u64) / secs / 1e9;
            }
            RoutinePerf { routine, gflops }
        })
        .collect()
}

/// Measures the dispatched ISA in full (all routines, all sizes) and every
/// other host-supported ISA at GEMM/1024 only — enough for the comparison
/// table without tripling the run time.
///
/// Pins `XK_KERNEL_ISA` per measurement and restores the previous value.
pub fn measure_all(reps: usize, peak_budget_ms: u64) -> (IsaPerf, Vec<(Isa, f64)>) {
    let saved = std::env::var(ISA_ENV).ok();
    let dispatched = selected_isa();

    std::env::set_var(ISA_ENV, dispatched.name());
    let main = IsaPerf {
        isa: dispatched,
        peak_gflops: microkernel_peak_gflops::<f64>(dispatched, peak_budget_ms),
        routines: measure_routines(reps),
    };

    let n = SIZES[2];
    let mut others = Vec::new();
    for &isa in supported_isas() {
        if isa == dispatched {
            continue;
        }
        std::env::set_var(ISA_ENV, isa.name());
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n * n];
        par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 201);
        par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 202);
        let mut c = vec![0.0f64; n * n];
        let secs = best_secs(reps, || {
            gemm(
                Trans::No,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                MatRef::from_slice(&b, n, n, n),
                0.5,
                MatMut::from_slice(&mut c, n, n, n),
            );
        });
        others.push((isa, Routine::Gemm.flops_square(n as u64) / secs / 1e9));
    }

    match saved {
        Some(v) => std::env::set_var(ISA_ENV, v),
        None => std::env::remove_var(ISA_ENV),
    }
    (main, others)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as pretty-printed JSON (hand-rolled; stable key
/// order, 3-decimal rates).
pub fn render_json(main: &IsaPerf, others: &[(Isa, f64)], reps: usize) -> String {
    let shape = kernel_shape::<f64>(main.isa);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"detected_isa\": \"{}\",\n", detected_isa().name()));
    s.push_str(&format!("  \"dispatched_isa\": \"{}\",\n", main.isa.name()));
    s.push_str(&format!(
        "  \"kernel\": {{\"name\": \"{}\", \"mr\": {}, \"nr\": {}, \"kc\": {}, \"mc\": {}, \"nc\": {}}},\n",
        shape.name, shape.mr, shape.nr, shape.kc, shape.mc, shape.nc
    ));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!(
        "  \"microkernel_peak_gflops\": {},\n",
        json_f(main.peak_gflops)
    ));
    s.push_str("  \"routines\": [\n");
    for (i, rp) in main.routines.iter().enumerate() {
        let frac_1024 = rp.gflops[2] / main.peak_gflops;
        s.push_str(&format!(
            "    {{\"routine\": \"{}\", \"gflops_256\": {}, \"gflops_512\": {}, \"gflops_1024\": {}, \"fraction_of_peak_1024\": {}}}{}\n",
            rp.routine.name().to_lowercase(),
            json_f(rp.gflops[0]),
            json_f(rp.gflops[1]),
            json_f(rp.gflops[2]),
            json_f(frac_1024),
            if i + 1 < main.routines.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"other_isas_gemm_1024\": {");
    for (i, (isa, gf)) in others.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {}", isa.name(), json_f(*gf)));
    }
    s.push_str("}\n");
    s.push_str("}\n");
    s
}

/// Measures and renders in one call: the string `bench_kernels` writes to
/// `BENCH_kernels.json`.
pub fn snapshot_json(reps: usize, peak_budget_ms: u64) -> String {
    let (main, others) = measure_all(reps, peak_budget_ms);
    render_json(&main, &others, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_shape() {
        let main = IsaPerf {
            isa: Isa::Scalar,
            peak_gflops: 10.0,
            routines: vec![RoutinePerf {
                routine: Routine::Gemm,
                gflops: [1.0, 2.0, 3.0],
            }],
        };
        let s = render_json(&main, &[(Isa::Scalar, 3.0)], 3);
        assert!(s.starts_with("{\n") && s.ends_with("}\n"));
        assert!(s.contains("\"dispatched_isa\": \"scalar\""));
        assert!(s.contains("\"gflops_1024\": 3.000"));
        assert!(s.contains("\"fraction_of_peak_1024\": 0.300"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn quick_measurement_is_positive() {
        // Tiny sizes keep this fast in debug test profiles; the real sizes
        // only run in the dedicated `bench_kernels` binary.
        let rp = measure_routines_at(1, [8, 16, 32]);
        assert_eq!(rp.len(), Routine::ALL.len());
        assert!(rp.iter().all(|r| r.gflops.iter().all(|&g| g > 0.0)));
    }
}
