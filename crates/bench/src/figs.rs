//! One reproduction function per table/figure of the paper. The binaries
//! in `src/bin/` are thin wrappers so that `run_all` and the integration
//! tests can drive the same code.

use std::fmt::Write as _;

use xk_baselines::{run, Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_runtime::{ObsReport, SimSession};
use xk_topo::{dgx1, FabricSpec, DGX1_TABLE1};
use xk_trace::SpanKind;

use crate::composition::{run_chameleon_composition, run_xkblas_composition};
use crate::report::{fmt_tflops, Table};
use crate::runcache;
use crate::sweep::{best_tile_run_with, sweep_series_par};

/// The process-wide cache, unless `run_all --serial` disabled it.
fn cache() -> Option<&'static runcache::RunCache> {
    runcache::global_if_enabled()
}

/// Best-tile run through the shared cache with parallel tile candidates.
fn best(
    lib: Library,
    topo: &FabricSpec,
    routine: Routine,
    n: usize,
    data_on_device: bool,
) -> Result<(usize, xk_baselines::RunResult), xk_baselines::RunError> {
    best_tile_run_with(lib, topo, routine, n, data_on_device, cache(), true)
}

/// Dimensions to sweep: `quick` trims the grid for tests/CI.
pub fn dims(quick: bool) -> Vec<usize> {
    if quick {
        vec![8192, 16384, 24576]
    } else {
        crate::sweep::PAPER_DIMS.to_vec()
    }
}

/// Table I + Fig. 1: platform description and NVLink adjacency.
pub fn table1_platform() -> String {
    let topo = dgx1();
    let mut out = String::from("Table I — DGX-1 multi-GPU system (modelled)\n");
    for (k, v) in DGX1_TABLE1 {
        let _ = writeln!(out, "  {k:<22} {v}");
    }
    out.push_str("\nFig. 1 — hybrid cube-mesh NVLink adjacency (x2 = two bricks):\n");
    for (a, b, class) in topo.nvlink_edges() {
        let _ = writeln!(out, "  gpu{a} <-> gpu{b}  {}", class.label());
    }
    let _ = writeln!(
        out,
        "  PCIe switches: {} (two GPUs each), 2 sockets",
        topo.n_switches()
    );
    out
}

/// Fig. 2: GPU↔GPU bandwidth matrix in GB/s from simulated point-to-point
/// transfers, next to the paper's measured values.
pub fn fig2_bandwidth(topo: &FabricSpec) -> Table {
    let measured = SimSession::on(topo).bandwidth_matrix(64 << 20);
    let n = topo.n_gpus();
    let mut header = vec!["D\\D".to_string()];
    header.extend((0..n).map(|j| j.to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for (i, row) in measured.iter().enumerate() {
        let mut cells = vec![i.to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        t.row(cells);
    }
    t
}

/// Fig. 3: GEMM/SYR2K/TRSM data-on-host with the heuristics ablated, plus
/// cuBLAS-XT as the reference. Returns one table per routine.
pub fn fig3_heuristics(topo: &FabricSpec, dims: &[usize]) -> Vec<(Routine, Table)> {
    let libs = [
        Library::CublasXt,
        Library::XkBlas(XkVariant::Full),
        Library::XkBlas(XkVariant::NoHeuristic),
        Library::XkBlas(XkVariant::NoHeuristicNoTopo),
    ];
    [Routine::Gemm, Routine::Syr2k, Routine::Trsm]
        .into_iter()
        .map(|routine| {
            let mut header = vec!["library".to_string()];
            header.extend(dims.iter().map(|n| n.to_string()));
            let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
            for lib in libs {
                let pts = sweep_series_par(lib, topo, routine, dims, false, cache());
                let mut row = vec![lib.name().to_string()];
                row.extend(pts.iter().map(|p| fmt_tflops(p.tflops)));
                t.row(row);
            }
            (routine, t)
        })
        .collect()
}

/// Fabric gallery panel: the Fig. 3-style heuristics ablation (plus the
/// Fig. 4-style data-on-device series) for GEMM on every fabric in
/// [`xk_topo::fabrics::gallery`]. One table per fabric — the place where
/// the heuristics' relative value visibly depends on the machine: on the
/// DGX-1 the topology-aware rank spread matters, on an NVSwitch or
/// PCIe-only box every peer ranks the same and only the optimistic
/// forwarding (or nothing) is left to win.
pub fn fabric_gallery_gemm(dims: &[usize]) -> Vec<(String, Table)> {
    let libs = [
        Library::CublasXt,
        Library::XkBlas(XkVariant::Full),
        Library::XkBlas(XkVariant::NoHeuristic),
        Library::XkBlas(XkVariant::NoHeuristicNoTopo),
    ];
    xk_topo::fabrics::gallery()
        .iter()
        .map(|topo| {
            let mut header = vec!["series".to_string()];
            header.extend(dims.iter().map(|n| n.to_string()));
            let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
            for lib in libs {
                let pts = sweep_series_par(lib, topo, Routine::Gemm, dims, false, cache());
                let mut row = vec![lib.name().to_string()];
                row.extend(pts.iter().map(|p| fmt_tflops(p.tflops)));
                t.row(row);
            }
            let pts = sweep_series_par(
                Library::XkBlas(XkVariant::Full),
                topo,
                Routine::Gemm,
                dims,
                true,
                cache(),
            );
            let mut row = vec!["XKBlas DoD".to_string()];
            row.extend(pts.iter().map(|p| fmt_tflops(p.tflops)));
            t.row(row);
            (
                format!("{} ({} GPUs, {} node(s))", topo.name(), topo.n_gpus(), topo.n_nodes()),
                t,
            )
        })
        .collect()
}

/// Table II: maximum loss/gain vs baseline XKBlas for N ≥ 16384.
pub fn table2_gains(topo: &FabricSpec, dims: &[usize]) -> Table {
    let big: Vec<usize> = dims.iter().copied().filter(|&n| n >= 16384).collect();
    let mut t = Table::new(&["Kernel", "data-on-device", "no heuristic", "no heuristic, no topo"]);
    for routine in [Routine::Gemm, Routine::Syr2k, Routine::Trsm] {
        let mut max_dod: f64 = f64::NEG_INFINITY;
        let mut max_noh: f64 = f64::INFINITY;
        let mut max_notopo: f64 = f64::INFINITY;
        for &n in &big {
            let base = best(Library::XkBlas(XkVariant::Full), topo, routine, n, false)
                .expect("xkblas always runs")
                .1
                .tflops;
            let dod = best(Library::XkBlas(XkVariant::Full), topo, routine, n, true)
                .expect("dod runs")
                .1
                .tflops;
            let noh = best(Library::XkBlas(XkVariant::NoHeuristic), topo, routine, n, false)
                .expect("variant runs")
                .1
                .tflops;
            let notopo = best(
                Library::XkBlas(XkVariant::NoHeuristicNoTopo),
                topo,
                routine,
                n,
                false,
            )
            .expect("variant runs")
            .1
            .tflops;
            max_dod = max_dod.max((dod / base - 1.0) * 100.0);
            max_noh = max_noh.min((noh / base - 1.0) * 100.0);
            max_notopo = max_notopo.min((notopo / base - 1.0) * 100.0);
        }
        t.row(vec![
            format!("D{}", routine.name()),
            format!("{max_dod:+.1}%"),
            format!("{max_noh:+.1}%"),
            format!("{max_notopo:+.1}%"),
        ]);
    }
    t
}

/// Fig. 4: data-on-device (paper: tile = ceil(N / (2·#gpus)), (4,2) grid)
/// vs the data-on-host references.
pub fn fig4_data_on_device(topo: &FabricSpec, dims: &[usize]) -> Vec<(Routine, Table)> {
    [Routine::Gemm, Routine::Syr2k, Routine::Trsm]
        .into_iter()
        .map(|routine| {
            let mut header = vec!["series".to_string()];
            header.extend(dims.iter().map(|n| n.to_string()));
            let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());

            // XKBlas DoD with the paper's tile rule.
            let mut dod_row = vec!["XKBlas DoD".to_string()];
            for &n in dims {
                let tile = n.div_ceil(2 * topo.n_gpus()).max(256);
                let params = RunParams {
                    routine,
                    n,
                    tile,
                    data_on_device: true,
                };
                let r = match cache() {
                    Some(c) => c.run(Library::XkBlas(XkVariant::Full), topo, &params),
                    None => run(Library::XkBlas(XkVariant::Full), topo, &params),
                }
                .expect("xkblas dod runs");
                dod_row.push(format!("{:.2}", r.tflops));
            }
            t.row(dod_row);

            for lib in [
                Library::XkBlas(XkVariant::Full),
                Library::ChameleonTile,
                Library::CublasXt,
            ] {
                let pts = sweep_series_par(lib, topo, routine, dims, false, cache());
                let mut row = vec![lib.name().to_string()];
                row.extend(pts.iter().map(|p| fmt_tflops(p.tflops)));
                t.row(row);
            }
            (routine, t)
        })
        .collect()
}

/// Fig. 5: all six routines across the eight libraries.
pub fn fig5_libraries(topo: &FabricSpec, dims: &[usize]) -> Vec<(Routine, Table)> {
    Routine::ALL
        .into_iter()
        .map(|routine| {
            let mut header = vec!["library".to_string()];
            header.extend(dims.iter().map(|n| n.to_string()));
            let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
            for lib in Library::FIG5 {
                if !lib.supports(routine) {
                    continue;
                }
                let pts = sweep_series_par(lib, topo, routine, dims, false, cache());
                let mut row = vec![lib.name().to_string()];
                row.extend(pts.iter().map(|p| fmt_tflops(p.tflops)));
                t.row(row);
            }
            (routine, t)
        })
        .collect()
}

/// Asserts the critical-path invariant on one finished run and hands back
/// its observability report: the chain reconstructed from the span DAG
/// must end exactly (bit-for-bit) at the makespan.
fn checked_obs<'r>(lib: Library, r: &'r xk_baselines::RunResult) -> Option<&'r ObsReport> {
    let obs = r.obs.as_ref()?;
    if let Some(cp) = &obs.critical_path {
        assert_eq!(
            cp.length.to_bits(),
            obs.makespan.to_bits(),
            "{}: critical path {} != makespan {}",
            lib.name(),
            cp.length,
            obs.makespan
        );
    }
    Some(obs)
}

/// Renders one run's observability summary: the top-3 hot links and the
/// critical-path composition.
pub fn obs_summary(obs: &ObsReport) -> String {
    let mut out = String::new();
    for l in obs.hot_links(3) {
        let _ = writeln!(
            out,
            "  hot link {:<16} busy {:.3}s  util {:>5.1}%  contention wait {:.3}s  {:.2} GiB",
            l.name,
            l.busy,
            l.utilization * 100.0,
            l.wait,
            l.bytes as f64 / (1u64 << 30) as f64
        );
    }
    if let Some(cp) = &obs.critical_path {
        let _ = write!(
            out,
            "  critical path {:.3}s over {} spans:",
            cp.length, cp.total_segments
        );
        for kind in SpanKind::ALL {
            let secs = cp.kind_seconds(kind);
            if secs > 0.0 {
                let _ = write!(out, " {} {:.3}s", kind.label(), secs);
            }
        }
        let _ = writeln!(out, ", runtime {:.3}s", cp.runtime_gap);
    }
    out
}

/// One-line LP optimality digest of an XKBlas-variant run: the makespan
/// lower bound's composition (critical path / link LP / compute, see
/// `xk_runtime::bound`) and the run's relative gap against it.
fn gap_line(topo: &FabricSpec, routine: Routine, n: usize, tile: usize, v: XkVariant) -> String {
    let cfg = v.runtime_config();
    let params = RunParams {
        routine,
        n,
        tile,
        data_on_device: false,
    };
    let g = xk_baselines::build_run_graph(topo, &params, &cfg, false);
    let run = SimSession::on(topo).config(cfg).run_bounded(&g);
    let b = run.lower_bound().expect("bounded run carries its bound");
    format!(
        "  LP lower bound {:.3}s (critical path {:.3}s, link LP {:.3}s, compute {:.3}s) — optimality gap {:.1}%\n",
        b.total,
        b.critical_path,
        b.link_lp,
        b.compute,
        run.optimality_gap().unwrap_or(0.0) * 100.0,
    )
}

/// Libraries of the trace figures (Fig. 6 uses six; we show the modelled
/// ones that run GEMM).
const FIG6_LIBS: [Library; 6] = [
    Library::Blasx,
    Library::ChameleonTile,
    Library::CublasMg,
    Library::CublasXt,
    Library::Dplasma,
    Library::XkBlas(XkVariant::Full),
];

/// Fig. 6: cumulative GPU seconds and normalized ratio per operation kind
/// for GEMM at the given dimension (paper: 32768).
pub fn fig6_trace_gemm(topo: &FabricSpec, n: usize) -> Table {
    let mut t = Table::new(&[
        "library", "DtoH s", "HtoD s", "PtoP s", "Kernel s", "DtoH %", "HtoD %", "PtoP %",
        "Kernel %", "xfer %",
    ]);
    for lib in FIG6_LIBS {
        let Ok((_, r)) = best(lib, topo, Routine::Gemm, n, false) else {
            continue;
        };
        let _ = checked_obs(lib, &r);
        let b = r.trace.breakdown();
        let total = b.total().max(1e-12);
        t.row(vec![
            lib.name().to_string(),
            format!("{:.3}", b.get(SpanKind::D2H)),
            format!("{:.3}", b.get(SpanKind::H2D)),
            format!("{:.3}", b.get(SpanKind::P2P)),
            format!("{:.3}", b.get(SpanKind::Kernel)),
            format!("{:.1}", b.get(SpanKind::D2H) / total * 100.0),
            format!("{:.1}", b.get(SpanKind::H2D) / total * 100.0),
            format!("{:.1}", b.get(SpanKind::P2P) / total * 100.0),
            format!("{:.1}", b.get(SpanKind::Kernel) / total * 100.0),
            format!("{:.1}", b.transfer_ratio() * 100.0),
        ]);
    }
    t
}

/// Fig. 6 companion: the per-library observability summary (hot links +
/// critical-path composition) of the same GEMM runs, with the CP invariant
/// asserted on every configuration.
pub fn fig6_obs(topo: &FabricSpec, n: usize) -> Vec<(Library, String)> {
    FIG6_LIBS
        .iter()
        .filter_map(|&lib| {
            let (tile, r) = best(lib, topo, Routine::Gemm, n, false).ok()?;
            let obs = checked_obs(lib, &r)?;
            let mut summary = obs_summary(obs);
            if let Library::XkBlas(v) = lib {
                summary.push_str(&gap_line(topo, Routine::Gemm, n, tile, v));
            }
            Some((lib, summary))
        })
        .collect()
}

/// Fig. 7 companion: observability summaries of the SYR2K runs.
pub fn fig7_obs(topo: &FabricSpec, n: usize) -> Vec<(Library, String)> {
    [Library::ChameleonTile, Library::CublasXt, Library::XkBlas(XkVariant::Full)]
        .into_iter()
        .filter_map(|lib| {
            let (tile, r) = best(lib, topo, Routine::Syr2k, n, false).ok()?;
            let obs = checked_obs(lib, &r)?;
            let mut summary = obs_summary(obs);
            if let Library::XkBlas(v) = lib {
                summary.push_str(&gap_line(topo, Routine::Syr2k, n, tile, v));
            }
            Some((lib, summary))
        })
        .collect()
}

/// Fig. 7: per-GPU time breakdown of SYR2K at the given dimension
/// (paper: 49152) for Chameleon Tile, cuBLAS-XT and XKBlas.
pub fn fig7_trace_syr2k(topo: &FabricSpec, n: usize) -> Vec<(Library, Table, f64)> {
    [Library::ChameleonTile, Library::CublasXt, Library::XkBlas(XkVariant::Full)]
        .into_iter()
        .filter_map(|lib| {
            let (_, r) = best(lib, topo, Routine::Syr2k, n, false).ok()?;
            let _ = checked_obs(lib, &r);
            let mut t = Table::new(&["gpu", "DtoH s", "HtoD s", "PtoP s", "Kernel s"]);
            let per = r.trace.breakdown_per_device();
            for g in 0..topo.n_gpus() {
                let b = per.get(&xk_trace::Place::Gpu(g as u32)).cloned().unwrap_or_default();
                t.row(vec![
                    format!("{}", g + 1),
                    format!("{:.3}", b.get(SpanKind::D2H)),
                    format!("{:.3}", b.get(SpanKind::H2D)),
                    format!("{:.3}", b.get(SpanKind::P2P)),
                    format!("{:.3}", b.get(SpanKind::Kernel)),
                ]);
            }
            let imb = xk_sim::imbalance(&r.trace.kernel_load_per_gpu(topo.n_gpus()));
            Some((lib, t, imb))
        })
        .collect()
}

/// Fig. 8: the TRSM+GEMM composition sweep.
pub fn fig8_composition(topo: &FabricSpec, dims: &[usize], tile: usize) -> Table {
    let mut header = vec!["series".to_string()];
    header.extend(dims.iter().map(|n| n.to_string()));
    let mut t = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    let mut xk = vec!["XKBlas".to_string()];
    let mut ch = vec!["Chameleon Tiled".to_string()];
    for &n in dims {
        xk.push(format!("{:.2}", run_xkblas_composition(topo, n, tile).tflops));
        ch.push(format!("{:.2}", run_chameleon_composition(topo, n, tile).tflops));
    }
    t.row(xk);
    t.row(ch);
    t
}

/// Fig. 9: Gantt charts of one composition run per library.
pub fn fig9_gantt(topo: &FabricSpec, n: usize, tile: usize, width: usize) -> String {
    let opts = xk_trace::GanttOptions {
        width,
        per_lane: false,
    };
    let x = run_xkblas_composition(topo, n, tile);
    let c = run_chameleon_composition(topo, n, tile);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "XKBlas composition (N={n}, block {tile}): {:.3}s, longest global gap {:.1} ms",
        x.seconds,
        x.sync_gap * 1e3
    );
    out.push_str(&xk_trace::gantt::render(&x.trace, topo.n_gpus(), &opts));
    for obs in &x.obs {
        out.push_str(&obs_summary(obs));
    }
    let _ = writeln!(
        out,
        "\nChameleon Tile composition: {:.3}s, longest global gap {:.1} ms",
        c.seconds,
        c.sync_gap * 1e3
    );
    out.push_str(&xk_trace::gantt::render(&c.trace, topo.n_gpus(), &opts));
    for obs in &c.obs {
        out.push_str(&obs_summary(obs));
    }
    out
}

/// Exports the Fig. 9 composition traces as Chrome `trace_event` JSON under
/// `results/` (open in `ui.perfetto.dev` or `chrome://tracing`); returns
/// the written paths.
pub fn fig9_export_traces(
    topo: &FabricSpec,
    n: usize,
    tile: usize,
) -> Result<Vec<std::path::PathBuf>, xk_runtime::Error> {
    let x = run_xkblas_composition(topo, n, tile);
    let c = run_chameleon_composition(topo, n, tile);
    Ok(vec![
        crate::report::write_result(
            "fig9_xkblas_composition.trace.json",
            &xk_trace::export::chrome_json(&x.trace),
        )?,
        crate::report::write_result(
            "fig9_chameleon_composition.trace.json",
            &xk_trace::export::chrome_json(&c.trace),
        )?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_v100_and_links() {
        let s = table1_platform();
        assert!(s.contains("V100"));
        assert!(s.contains("gpu0 <-> gpu3"));
    }

    #[test]
    fn fig2_matrix_shape() {
        let t = fig2_bandwidth(&dgx1());
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn fig6_includes_xkblas_row() {
        let t = fig6_trace_gemm(&dgx1(), 8192);
        assert!(t.render().contains("XKBlas"));
    }
}
