//! The TRSM + GEMM composition benchmark of the paper's §IV-F
//! (Fig. 8 performance sweep, Fig. 9 Gantt).

use xk_baselines::RunParams;
use xk_kernels::{Diag, Routine, Side, Trans, Uplo};
use xk_runtime::{Heuristics, ObsLevel, ObsReport, RuntimeConfig, SchedulerKind};
use xk_topo::FabricSpec;
use xk_trace::Trace;
use xkblas_core::{gemm_async, trsm_async, Context, Matrix};

/// Result of one composition run.
#[derive(Clone, Debug)]
pub struct CompositionResult {
    /// End-to-end seconds.
    pub seconds: f64,
    /// Achieved TFlop/s over the combined flop count (`N³ + 2N³`).
    pub tflops: f64,
    /// Full trace (Chameleon's is the concatenation of its two calls).
    pub trace: Trace,
    /// Longest instant with no device active (the synchronization hole of
    /// Fig. 9; ~0 for XKBlas).
    pub sync_gap: f64,
    /// Observability reports of the underlying simulated runs: one for the
    /// fused XKBlas graph, one per synchronous call for Chameleon.
    pub obs: Vec<ObsReport>,
}

/// Combined flop count of the composition at dimension `n`.
pub fn composition_flops(n: usize) -> f64 {
    Routine::Trsm.flops_square(n as u64) + Routine::Gemm.flops_square(n as u64)
}

/// XKBlas composition: both calls in one graph, point-to-point
/// dependencies between them, one coherency at the end (§IV-F).
pub fn run_xkblas_composition(topo: &FabricSpec, n: usize, tile: usize) -> CompositionResult {
    let mut ctx = Context::<f64>::new(topo.clone(), RuntimeConfig::xkblas(), tile);
    ctx.set_simulation_only(true);
    ctx.set_observability(ObsLevel::Full);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    let d = Matrix::<f64>::phantom(n, n);
    // X = inv(A) B stored in B, then D = X * C.
    trsm_async(&mut ctx, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, &a, &b);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &b, &c, 0.0, &d);
    ctx.memory_coherent_async(&b);
    ctx.memory_coherent_async(&d);
    let sim = ctx.run_simulated();
    let flops = composition_flops(n);
    CompositionResult {
        seconds: sim.makespan,
        tflops: sim.tflops(flops),
        sync_gap: sim.trace.longest_kernel_gap(),
        obs: sim.obs.into_iter().collect(),
        trace: sim.trace,
    }
}

/// Chameleon composition: two synchronous calls — the TRSM result returns
/// to host coherence before the GEMM starts re-distributing it (the
/// synchronization gap of Fig. 9).
pub fn run_chameleon_composition(topo: &FabricSpec, n: usize, tile: usize) -> CompositionResult {
    let cfg = || {
        let mut cfg = RuntimeConfig::xkblas()
            .with_scheduler(SchedulerKind::Dmdas)
            .with_heuristics(Heuristics::host_only());
        cfg.kernel_streams = 2;
        cfg.window = 8;
        cfg.eager_flush = true;
        cfg.task_overhead = 60.0e-6;
        cfg.prefetch_at_assign = false;
        cfg
    };
    let params = |routine| RunParams {
        routine,
        n,
        tile,
        data_on_device: false,
    };
    let r1 = xk_baselines::run_on_runtime(topo, &params(Routine::Trsm), cfg(), true);
    let r2 = xk_baselines::run_on_runtime(topo, &params(Routine::Gemm), cfg(), true);
    let obs = r1.obs.into_iter().chain(r2.obs).collect();
    let mut trace = r1.trace;
    let mut second = r2.trace;
    second.shift(r1.seconds);
    trace.extend(second);
    let seconds = r1.seconds + r2.seconds;
    CompositionResult {
        seconds,
        tflops: composition_flops(n) / seconds / 1e12,
        sync_gap: trace.longest_kernel_gap(),
        trace,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    #[test]
    fn xkblas_composes_without_gaps() {
        let topo = dgx1();
        let x = run_xkblas_composition(&topo, 8192, 2048);
        let c = run_chameleon_composition(&topo, 8192, 2048);
        assert!(x.tflops > c.tflops, "XKBlas {} <= Chameleon {}", x.tflops, c.tflops);
        // Chameleon's inter-call synchronization hole dwarfs XKBlas's.
        assert!(
            x.sync_gap < c.sync_gap,
            "gaps: xkblas {} chameleon {}",
            x.sync_gap,
            c.sync_gap
        );
    }

    #[test]
    fn composition_flop_count() {
        let n = 1000;
        assert!((composition_flops(n) - 3.0e9).abs() < 1.0);
    }
}
