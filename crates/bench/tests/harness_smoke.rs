//! Smoke tests of the figure-reproduction harness at reduced sizes: every
//! reproduction function runs and produces sane, well-formed output.

use xk_bench::figs;
use xk_topo::dgx1;

const SMALL_DIMS: [usize; 2] = [4096, 8192];

#[test]
fn fig3_tables_complete() {
    let topo = dgx1();
    let tables = figs::fig3_heuristics(&topo, &SMALL_DIMS);
    assert_eq!(tables.len(), 3);
    for (routine, t) in tables {
        assert_eq!(t.len(), 4, "{routine:?}: 4 config rows");
        let csv = t.to_csv();
        assert!(csv.contains("XKBlas, no heuristic, no topo"));
        // No empty cells for these libraries at these sizes.
        assert!(!csv.contains(",-"), "unexpected missing point:\n{csv}");
    }
}

#[test]
fn table2_has_three_kernels() {
    let topo = dgx1();
    let t = figs::table2_gains(&topo, &[16384]);
    assert_eq!(t.len(), 3);
    let csv = t.to_csv();
    for k in ["DGEMM", "DSYR2K", "DTRSM"] {
        assert!(csv.contains(k));
    }
    // DoD column is a gain, ablation columns are losses.
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert!(cells[1].starts_with('+'), "DoD should gain: {line}");
        assert!(cells[2].starts_with('-'), "no-heuristic should lose: {line}");
        assert!(cells[3].starts_with('-'), "no-topo should lose: {line}");
    }
}

#[test]
fn fig4_dod_beats_doh_at_moderate_size() {
    let topo = dgx1();
    let tables = figs::fig4_data_on_device(&topo, &[8192]);
    for (routine, t) in tables {
        let csv = t.to_csv();
        let mut dod = None;
        let mut doh = None;
        for line in csv.lines().skip(1) {
            let mut cells = line.split(',');
            let name = cells.next().unwrap();
            let val: f64 = cells.next().unwrap().parse().unwrap_or(0.0);
            if name == "XKBlas DoD" {
                dod = Some(val);
            } else if name == "XKBlas" {
                doh = Some(val);
            }
        }
        let (dod, doh) = (dod.unwrap(), doh.unwrap());
        assert!(dod > doh, "{routine:?}: DoD {dod} <= DoH {doh}");
    }
}

#[test]
fn fig5_respects_library_support_matrix() {
    let topo = dgx1();
    let tables = figs::fig5_libraries(&topo, &SMALL_DIMS);
    assert_eq!(tables.len(), 6);
    for (routine, t) in tables {
        let csv = t.to_csv();
        let gemm_only_present = csv.contains("cuBLAS-MG");
        if routine == xk_kernels::Routine::Gemm {
            assert!(gemm_only_present);
            assert_eq!(t.len(), 8, "all eight libraries on GEMM");
        } else {
            assert!(!gemm_only_present, "{routine:?} must skip cuBLAS-MG");
        }
        assert!(csv.contains("XKBlas"));
    }
}

#[test]
fn fig6_ratios_sum_to_one() {
    let topo = dgx1();
    let t = figs::fig6_trace_gemm(&topo, 8192);
    for line in t.to_csv().lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let pct: f64 = cells[5..9]
            .iter()
            .map(|c| c.parse::<f64>().unwrap())
            .sum();
        assert!((pct - 100.0).abs() < 0.5, "shares must sum to 100: {line}");
    }
}

#[test]
fn fig7_has_all_gpus_per_library() {
    let topo = dgx1();
    let out = figs::fig7_trace_syr2k(&topo, 8192);
    assert_eq!(out.len(), 3);
    for (_, t, imbalance) in out {
        assert_eq!(t.len(), 8, "one row per GPU");
        assert!(imbalance >= 0.0);
    }
}

#[test]
fn fig9_gantt_renders_both_libraries() {
    let topo = dgx1();
    let s = figs::fig9_gantt(&topo, 8192, 2048, 60);
    assert!(s.contains("XKBlas composition"));
    assert!(s.contains("Chameleon Tile composition"));
    assert!(s.contains("legend"));
    assert!(s.matches("gpu0").count() >= 2);
}

#[test]
fn bandwidth_matrix_is_symmetric_positive() {
    let topo = dgx1();
    let t = figs::fig2_bandwidth(&topo);
    let csv = t.to_csv();
    let rows: Vec<Vec<f64>> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
        .collect();
    for i in 0..8 {
        for j in 0..8 {
            assert!(rows[i][j] > 0.0);
            assert!((rows[i][j] - rows[j][i]).abs() < 1e-6);
        }
    }
}

#[test]
fn fabric_gallery_panels_complete() {
    let tables = figs::fabric_gallery_gemm(&[4096, 8192]);
    assert_eq!(tables.len(), 4, "one panel per gallery fabric");
    for (name, t) in tables {
        assert_eq!(t.len(), 5, "{name}: 4 library rows + DoD");
        let csv = t.to_csv();
        assert!(csv.contains("XKBlas DoD"), "{name}");
        assert!(!csv.contains(",-"), "{name}: unexpected missing point:\n{csv}");
    }
}

#[test]
fn heuristics_rank_differently_across_fabrics() {
    // The point of the fabric gallery: the paper's heuristics are
    // topology-sensitive. On the DGX-1's heterogeneous cube mesh the full
    // heuristic stack wins; on a 16-GPU NVSwitch machine every peer ranks
    // the same and (at this size) the optimistic forwarding chain loses to
    // plain earliest-arrival selection.
    use xk_baselines::{run, Library, RunParams, XkVariant};
    let params = RunParams {
        routine: xk_kernels::Routine::Gemm,
        n: 8192,
        tile: 2048,
        data_on_device: false,
    };
    let tflops = |topo: &xk_topo::FabricSpec, v: XkVariant| {
        run(Library::XkBlas(v), topo, &params).expect("runs").tflops
    };
    let d = dgx1();
    assert!(tflops(&d, XkVariant::Full) > tflops(&d, XkVariant::NoHeuristic));
    let nvswitch = xk_topo::fabrics::dgx2(16);
    assert!(
        tflops(&nvswitch, XkVariant::Full) < tflops(&nvswitch, XkVariant::NoHeuristic),
        "heuristic ranking should flip on the NVSwitch fabric"
    );
}
