//! The parallel sweep driver must be a pure wall-clock optimization:
//! every series point and every recorded trace must match the serial
//! reference bit for bit (modulo process-global matrix ids in labels).

use xk_baselines::{Library, XkVariant};
use xk_bench::{best_tile_run, best_tile_run_with, sweep_series, sweep_series_par, RunCache};
use xk_kernels::Routine;
use xk_topo::dgx1;
use xk_trace::Trace;

const DIMS: [usize; 2] = [4096, 8192];

/// Matrix handles are labelled `M<id>(i,j)` with a process-wide counter,
/// so the id differs between two otherwise identical runs: strip the
/// digit run after each `M` before comparing labels.
fn normalize(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut chars = label.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == 'M' {
            while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

fn assert_traces_identical(a: &Trace, b: &Trace) {
    assert_eq!(a.len(), b.len(), "span counts differ");
    for (sa, sb) in a.spans().iter().zip(b.spans()) {
        assert_eq!(sa.place, sb.place);
        assert_eq!(sa.lane, sb.lane);
        assert_eq!(sa.kind, sb.kind);
        assert_eq!(sa.start.to_bits(), sb.start.to_bits());
        assert_eq!(sa.end.to_bits(), sb.end.to_bits());
        assert_eq!(sa.bytes, sb.bytes);
        assert_eq!(normalize(a.label(sa.label)), normalize(b.label(sb.label)));
    }
}

#[test]
fn parallel_sweep_matches_serial_bitwise() {
    let topo = dgx1();
    for lib in [Library::XkBlas(XkVariant::Full), Library::CublasXt] {
        for routine in [Routine::Gemm, Routine::Syr2k] {
            if !lib.supports(routine) {
                continue;
            }
            let serial = sweep_series(lib, &topo, routine, &DIMS, false);
            let cache = RunCache::new();
            let parallel = sweep_series_par(lib, &topo, routine, &DIMS, false, Some(&cache));
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.n, p.n);
                assert_eq!(s.tile, p.tile, "{lib:?} {routine:?} N={}", s.n);
                assert_eq!(
                    s.tflops.map(f64::to_bits),
                    p.tflops.map(f64::to_bits),
                    "{lib:?} {routine:?} N={}",
                    s.n
                );
                match (&s.result, &p.result) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                        assert_eq!(a.bytes_h2d, b.bytes_h2d);
                        assert_eq!(a.bytes_d2h, b.bytes_d2h);
                        assert_eq!(a.bytes_p2p, b.bytes_p2p);
                    }
                    (None, None) => {}
                    _ => panic!("serial and parallel disagree on success"),
                }
            }
        }
    }
}

/// The event-queue backend must be invisible in simulation output: a full
/// library run pinned to the heap oracle and one pinned to the calendar
/// queue produce bit-identical traces, makespans and byte counters.
#[test]
fn traces_identical_across_queue_backends() {
    struct Restore(Option<std::ffi::OsString>);
    impl Drop for Restore {
        fn drop(&mut self) {
            match self.0.take() {
                Some(v) => std::env::set_var(xk_sim::QUEUE_ENV, v),
                None => std::env::remove_var(xk_sim::QUEUE_ENV),
            }
        }
    }
    let _restore = Restore(std::env::var_os(xk_sim::QUEUE_ENV));

    let topo = dgx1();
    let lib = Library::XkBlas(XkVariant::Full);
    let params = xk_baselines::RunParams {
        routine: Routine::Gemm,
        n: 8192,
        tile: 2048,
        data_on_device: false,
    };
    std::env::set_var(xk_sim::QUEUE_ENV, "heap");
    let heap = xk_baselines::run(lib, &topo, &params).unwrap();
    std::env::set_var(xk_sim::QUEUE_ENV, "calendar");
    let calendar = xk_baselines::run(lib, &topo, &params).unwrap();

    assert_eq!(heap.seconds.to_bits(), calendar.seconds.to_bits());
    assert_eq!(heap.tflops.to_bits(), calendar.tflops.to_bits());
    assert_eq!(heap.bytes_h2d, calendar.bytes_h2d);
    assert_eq!(heap.bytes_d2h, calendar.bytes_d2h);
    assert_eq!(heap.bytes_p2p, calendar.bytes_p2p);
    assert_traces_identical(&heap.trace, &calendar.trace);
}

#[test]
fn traces_identical_serial_vs_parallel_and_cached() {
    let topo = dgx1();
    let lib = Library::XkBlas(XkVariant::Full);
    let (serial_tile, serial) = best_tile_run(lib, &topo, Routine::Gemm, 4096, false).unwrap();
    let cache = RunCache::new();
    let (par_tile, par) =
        best_tile_run_with(lib, &topo, Routine::Gemm, 4096, false, Some(&cache), true).unwrap();
    assert_eq!(serial_tile, par_tile);
    assert_traces_identical(&serial.trace, &par.trace);
    // The memoized replay hands back the very same trace.
    let (_, cached) =
        best_tile_run_with(lib, &topo, Routine::Gemm, 4096, false, Some(&cache), true).unwrap();
    assert!(cache.stats().hits > 0, "second evaluation must hit the memo");
    assert_traces_identical(&par.trace, &cached.trace);
}
