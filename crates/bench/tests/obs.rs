//! Observability through the bench harness: the critical-path invariant
//! on every library the paper's figures compare, and the obs summaries the
//! figure binaries print.

use xk_baselines::{Library, XkVariant};
use xk_bench::{best_tile_run, figs};
use xk_kernels::Routine;
use xk_topo::dgx1;

const N: usize = 8192;

/// Runtime-backed libraries carry a full report whose critical path equals
/// the makespan bit-for-bit; fabric-backed models (cuBLAS-XT, SLATE) carry
/// none.
#[test]
fn run_results_carry_obs_with_cp_invariant() {
    let topo = dgx1();
    for lib in [
        Library::XkBlas(XkVariant::Full),
        Library::XkBlas(XkVariant::NoHeuristic),
        Library::ChameleonTile,
    ] {
        let (_, r) = best_tile_run(lib, &topo, Routine::Gemm, N, false)
            .unwrap_or_else(|e| panic!("{lib:?} failed: {e}"));
        let obs = r.obs.as_ref().unwrap_or_else(|| panic!("{lib:?}: no obs report"));
        let cp = obs.critical_path.as_ref().expect("full observability");
        assert_eq!(
            cp.length.to_bits(),
            obs.makespan.to_bits(),
            "{lib:?}: critical path {} != makespan {}",
            cp.length,
            obs.makespan
        );
        assert!(!obs.links.is_empty());
        assert!(!obs.hot_links(3).is_empty(), "{lib:?}: no interconnect traffic?");
    }
    for lib in [Library::CublasXt, Library::Slate] {
        let (_, r) = best_tile_run(lib, &topo, Routine::Gemm, N, false)
            .unwrap_or_else(|e| panic!("{lib:?} failed: {e}"));
        assert!(r.obs.is_none(), "{lib:?} is fabric-modelled, expected no obs");
    }
}

/// The fig6/fig7 companions assert the invariant internally on every
/// configuration and render a non-empty summary per observable library.
#[test]
fn fig_obs_summaries_render() {
    let topo = dgx1();
    let gemm = figs::fig6_obs(&topo, N);
    assert!(gemm.len() >= 3, "only {} observable GEMM libraries", gemm.len());
    for (lib, summary) in &gemm {
        assert!(summary.contains("critical path"), "{lib:?}:\n{summary}");
        assert!(summary.contains("util"), "{lib:?}:\n{summary}");
    }
    let syr2k = figs::fig7_obs(&topo, N);
    assert!(!syr2k.is_empty());
    for (_, summary) in &syr2k {
        assert!(summary.contains("critical path"));
    }
}

/// SYR2K on the runtime path also satisfies the invariant (different task
/// graph shape: rank-2k updates with symmetric outputs).
#[test]
fn syr2k_cp_invariant() {
    let topo = dgx1();
    let (_, r) = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Syr2k, N, false)
        .expect("syr2k runs");
    let obs = r.obs.expect("obs report");
    let cp = obs.critical_path.expect("critical path");
    assert_eq!(cp.length.to_bits(), obs.makespan.to_bits());
    let covered: f64 = cp.by_kind.values().sum::<f64>() + cp.runtime_gap;
    assert!((covered - obs.makespan).abs() <= 1e-9 * obs.makespan.max(1.0));
}
