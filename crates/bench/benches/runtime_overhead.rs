//! Task creation + scheduling overhead: the cost the paper's abstract
//! highlights ("including the overhead of creation and scheduling of
//! dynamic tasks"). Measures graph construction throughput and full
//! simulated-execution throughput in tasks/second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xk_runtime::RuntimeConfig;
use xkblas_core::{gemm_async, Context, Matrix, Trans};

fn build_gemm_graph(n_tiles: usize) -> Context<f64> {
    let n = n_tiles * 256;
    let mut ctx = Context::<f64>::new(xk_topo::dgx1(), RuntimeConfig::xkblas(), 256);
    ctx.set_simulation_only(true);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    ctx
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(20);
    for &t in &[4usize, 8] {
        let tasks = (t * t * t) as u64;
        group.throughput(Throughput::Elements(tasks));
        group.bench_with_input(BenchmarkId::new("gemm_tasks", tasks), &t, |bench, &t| {
            bench.iter(|| {
                let ctx = build_gemm_graph(t);
                assert_eq!(ctx.pending_tasks(), t * t * t);
                ctx
            });
        });
    }
    group.finish();
}

/// Simulated execution (graph build + full DES run) through the public API.
fn bench_context_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_execution");
    group.sample_size(10);
    for &t in &[4usize, 8] {
        let tasks = (t * t * t) as u64;
        group.throughput(Throughput::Elements(tasks));
        group.bench_with_input(BenchmarkId::new("gemm_sim", tasks), &t, |bench, &t| {
            bench.iter(|| {
                let mut ctx = build_gemm_graph(t);
                ctx.run_simulated()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_construction, bench_context_sim);
criterion_main!(benches);
