//! Discrete-event core throughput: event heap and engine reservations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xk_sim::{Clock, Duration, EnginePool, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("push_pop_10k", |bench| {
        bench.iter(|| {
            let mut clock: Clock<u64> = Clock::new();
            for i in 0..n {
                // Pseudo-random but deterministic times.
                let t = (i.wrapping_mul(2654435761) % 1000) as f64 * 1e-3;
                clock.schedule(SimTime::new(t), i);
            }
            let mut count = 0;
            while clock.next().is_some() {
                count += 1;
            }
            assert_eq!(count, n);
        });
    });
    group.finish();
}

fn bench_reservations(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reservations");
    group.sample_size(20);
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("joint_reserve_10k", |bench| {
        bench.iter(|| {
            let mut pool = EnginePool::new();
            let engines: Vec<_> = (0..16).map(|i| pool.add(format!("e{i}"))).collect();
            for i in 0..n {
                let a = engines[(i % 16) as usize];
                let b = engines[((i / 16) % 16) as usize];
                let ids = if a == b { vec![a] } else { vec![a, b] };
                pool.reserve(&ids, SimTime::ZERO, Duration::new(1e-6));
            }
            pool
        });
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_reservations);
criterion_main!(benches);
