//! Discrete-event core throughput: event heap, engine reservations and
//! trace span recording.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use xk_sim::{Clock, Duration, EnginePool, EventQueue, QueueBackend, SimTime};
use xk_trace::{FlowId, Place, Span, SpanKind, Trace};

/// Pre-fills `pending` uniform-random events for the hold benchmarks.
fn prefilled(backend: QueueBackend, pending: usize) -> EventQueue<u64> {
    let mut q = EventQueue::with_backend_capacity(backend, pending);
    let mut x = 0x9e3779b97f4a7c15u64;
    q.push_batch((0..pending as u64).map(|i| {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        (SimTime::new((x >> 11) as f64 / (1u64 << 53) as f64), i)
    }));
    q
}

/// The classic hold model: `ops` pop-min / push-future pairs at a steady
/// queue size.
fn hold(q: &mut EventQueue<u64>, ops: u64) {
    let mut x = 7u64;
    for i in 0..ops {
        let (t, _) = q.pop().expect("hold keeps the queue non-empty");
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let dt = (x >> 11) as f64 / (1u64 << 53) as f64;
        q.push(SimTime::new(t.seconds() + dt), i);
    }
}

/// Heap vs calendar at steady pending sizes 1e4 / 1e5 / 1e6: the shape the
/// simulator's hot loop produces, reported per backend so regressions in
/// either show up head-to-head.
fn bench_queue_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    group.sample_size(10);
    const OPS: u64 = 200_000;
    group.throughput(Throughput::Elements(2 * OPS));
    for &pending in &[10_000usize, 100_000, 1_000_000] {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let name = format!("{backend:?}").to_lowercase();
            group.bench_with_input(BenchmarkId::new(name, pending), &pending, |bench, &p| {
                bench.iter_batched(
                    || prefilled(backend, p),
                    |mut q| {
                        hold(&mut q, OPS);
                        q
                    },
                    BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("push_pop_10k", |bench| {
        bench.iter(|| {
            let mut clock: Clock<u64> = Clock::new();
            for i in 0..n {
                // Pseudo-random but deterministic times.
                let t = (i.wrapping_mul(2654435761) % 1000) as f64 * 1e-3;
                clock.schedule(SimTime::new(t), i);
            }
            let mut count = 0;
            while clock.next().is_some() {
                count += 1;
            }
            assert_eq!(count, n);
        });
    });
    let m = 1_000_000u64;
    group.throughput(Throughput::Elements(m));
    group.bench_function("push_pop_1m", |bench| {
        bench.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(m as usize);
            for i in 0..m {
                let t = (i.wrapping_mul(2654435761) % 1_000_003) as f64 * 1e-6;
                q.push(SimTime::new(t), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            assert_eq!(count, m);
        });
    });
    group.bench_function("push_batch_1m", |bench| {
        bench.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            q.push_batch((0..m).map(|i| {
                let t = (i.wrapping_mul(2654435761) % 1_000_003) as f64 * 1e-6;
                (SimTime::new(t), i)
            }));
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            assert_eq!(count, m);
        });
    });
    group.finish();
}

fn bench_span_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_recording");
    group.sample_size(20);
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    // 64 distinct labels cycled over n spans: the executor's situation,
    // where each task label repeats across many recorded spans.
    let labels: Vec<String> = (0..64).map(|i| format!("gemm[{},{}]", i / 8, i % 8)).collect();
    group.bench_function("interned_labels", |bench| {
        bench.iter(|| {
            let mut trace = Trace::new();
            let ids: Vec<_> = labels.iter().map(|l| trace.intern(l)).collect();
            for i in 0..n {
                trace.push(Span {
                    place: Place::Gpu((i % 8) as u32),
                    lane: 3,
                    kind: SpanKind::Kernel,
                    start: i as f64 * 1e-6,
                    end: i as f64 * 1e-6 + 1e-6,
                    bytes: 0,
                    label: ids[(i % 64) as usize],
                    flow: FlowId::NONE,
                });
            }
            trace
        });
    });
    group.bench_function("intern_per_span", |bench| {
        // Re-interning the string on every span: the cost a caller pays
        // when it does not hoist the intern out of its hot loop.
        bench.iter(|| {
            let mut trace = Trace::new();
            for i in 0..n {
                let label = trace.intern(&labels[(i % 64) as usize]);
                trace.push(Span {
                    place: Place::Gpu((i % 8) as u32),
                    lane: 3,
                    kind: SpanKind::Kernel,
                    start: i as f64 * 1e-6,
                    end: i as f64 * 1e-6 + 1e-6,
                    bytes: 0,
                    label,
                    flow: FlowId::NONE,
                });
            }
            trace
        });
    });
    group.finish();
}

fn bench_reservations(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reservations");
    group.sample_size(20);
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("joint_reserve_10k", |bench| {
        bench.iter(|| {
            let mut pool = EnginePool::new();
            let engines: Vec<_> = (0..16).map(|i| pool.add(format!("e{i}"))).collect();
            for i in 0..n {
                let a = engines[(i % 16) as usize];
                let b = engines[((i / 16) % 16) as usize];
                let ids = if a == b { vec![a] } else { vec![a, b] };
                pool.reserve(&ids, SimTime::ZERO, Duration::new(1e-6));
            }
            pool
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_queue_backends,
    bench_span_recording,
    bench_reservations
);
criterion_main!(benches);
