//! Source-selection micro-benchmark: the per-transfer decision cost of the
//! paper's heuristics (they sit on the critical path of every fetch), plus
//! an end-to-end ablation at a communication-bound size.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xk_baselines::{run, Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_runtime::heuristics::select_source;
use xk_runtime::{DataInfo, DataRegistry, Heuristics, SoftwareCache};
use xk_sim::SimTime;

fn bench_select_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_source");
    group.sample_size(30);
    let topo = xk_topo::dgx1();
    let mut reg = DataRegistry::new();
    let handles: Vec<_> = (0..256)
        .map(|i| reg.add(DataInfo::host(1 << 20, true, format!("t{i}"))))
        .collect();
    let mut cache = SoftwareCache::new(8, 32 << 30, &reg);
    // Populate: a third valid on random GPUs, a third in flight, a third
    // host-only.
    for (i, &h) in handles.iter().enumerate() {
        match i % 3 {
            0 => cache.begin_transfer(h, i % 8, 1 << 20, SimTime::ZERO),
            1 => cache.begin_transfer(h, (i * 5) % 8, 1 << 20, SimTime::new(1e9_f64)),
            _ => {}
        }
    }
    let now = SimTime::new(1.0);
    group.throughput(Throughput::Elements(handles.len() as u64));
    for (name, cfg) in [
        ("full", Heuristics::full()),
        ("no_optimistic", Heuristics::no_optimistic()),
        ("none", Heuristics::none()),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut acc = 0usize;
                for (i, &h) in handles.iter().enumerate() {
                    let mut tie = |c: &[usize]| c.len() - 1;
                    let d = select_source(h, (i + 3) % 8, now, &cache, &topo, cfg, &mut tie);
                    acc += match d {
                        xk_runtime::heuristics::SourceDecision::FromHost => 1,
                        _ => 2,
                    };
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_ablation_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sim_n8192");
    group.sample_size(10);
    let topo = xk_topo::dgx1();
    let params = RunParams {
        routine: Routine::Gemm,
        n: 8192,
        tile: 1024,
        data_on_device: false,
    };
    for (name, variant) in [
        ("full", XkVariant::Full),
        ("no_heuristic", XkVariant::NoHeuristic),
        ("none", XkVariant::NoHeuristicNoTopo),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| run(Library::XkBlas(variant), &topo, &params).unwrap().seconds);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select_source, bench_ablation_end_to_end);
criterion_main!(benches);
