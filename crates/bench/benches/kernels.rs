//! Micro-benchmarks of the numeric tile kernels (the host-compute path).
//!
//! Each GEMM group benches the blocked packed engine against the retained
//! pre-blocking scalar kernel (`naive`), so criterion reports the engine's
//! speedup directly; throughput is in flops (criterion's "elements"), so
//! the reported rate is GFLOP/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xk_kernels::naive::gemm_naive;
use xk_kernels::parallel::{par_fill_pattern, par_gemm, par_gemm_naive};
use xk_kernels::simd::{run_tile, supported_isas};
use xk_kernels::{gemm, kernel_shape, syrk, trsm, Diag, MatMut, MatRef, Side, Trans, Uplo};

/// Every host-supported microkernel head to head: bare `run_tile` calls at
/// the kernel's own KC depth over packed L1-resident panels — no packing,
/// no cache blocking — so criterion reports pure register-tile GFLOP/s
/// (scalar vs AVX2 vs AVX-512 on x86, scalar vs NEON on aarch64).
fn bench_microkernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel_tile");
    for &isa in supported_isas() {
        let s = kernel_shape::<f64>(isa);
        let kc = s.kc;
        let pa: Vec<f64> = (0..kc * s.mr).map(|i| (i % 23) as f64 * 0.05 - 0.5).collect();
        let pb: Vec<f64> = (0..kc * s.nr).map(|i| (i % 19) as f64 * 0.05 - 0.4).collect();
        let mut tile = vec![0.0f64; s.mr * s.nr];
        group.throughput(Throughput::Elements((2 * s.mr * s.nr * kc) as u64));
        group.bench_function(BenchmarkId::new(s.name, kc), |bench| {
            bench.iter(|| {
                run_tile(isa, kc, &pa, &pb, 1.0, 1.0, &mut tile, s.mr);
            });
        });
    }
    group.finish();
}

fn bench_gemm_tiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_dgemm");
    group.sample_size(20);
    for &n in &[64usize, 128, 256] {
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n * n];
        par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 1);
        par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 2);
        let mut cm = vec![0.0f64; n * n];
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| {
                gemm(
                    Trans::No,
                    Trans::No,
                    1.0,
                    MatRef::from_slice(&a, n, n, n),
                    MatRef::from_slice(&b, n, n, n),
                    0.5,
                    MatMut::from_slice(&mut cm, n, n, n),
                );
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| {
                gemm_naive(
                    Trans::No,
                    Trans::No,
                    1.0,
                    MatRef::from_slice(&a, n, n, n),
                    MatRef::from_slice(&b, n, n, n),
                    0.5,
                    MatMut::from_slice(&mut cm, n, n, n),
                );
            });
        });
    }
    group.finish();
}

fn bench_syrk_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_dsyrk");
    group.sample_size(20);
    let n = 256usize;
    let mut a = vec![0.0f64; n * n];
    par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 7);
    let mut cm = vec![0.0f64; n * n];
    group.throughput(Throughput::Elements((n * n * (n + 1)) as u64));
    group.bench_function("256", |bench| {
        bench.iter(|| {
            syrk(
                Uplo::Lower,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                0.5,
                MatMut::from_slice(&mut cm, n, n, n),
            );
        });
    });
    group.finish();
}

fn bench_trsm_tile(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_dtrsm");
    group.sample_size(20);
    let n = 128usize;
    let mut a = vec![0.0f64; n * n];
    par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 3);
    for i in 0..n {
        a[i + i * n] = 4.0;
    }
    let mut b = vec![0.0f64; n * n];
    par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 4);
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function("128", |bench| {
        bench.iter(|| {
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::No,
                Diag::NonUnit,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                MatMut::from_slice(&mut b, n, n, n),
            );
        });
    });
    group.finish();
}

fn bench_par_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_dgemm");
    group.sample_size(10);
    let n = 384usize;
    let mut a = vec![0.0f64; n * n];
    let mut b = vec![0.0f64; n * n];
    par_fill_pattern(MatMut::from_slice(&mut a, n, n, n), 5);
    par_fill_pattern(MatMut::from_slice(&mut b, n, n, n), 6);
    let mut cm = vec![0.0f64; n * n];
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function(BenchmarkId::new("blocked", n), |bench| {
        bench.iter(|| {
            par_gemm(
                Trans::No,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                MatRef::from_slice(&b, n, n, n),
                0.0,
                MatMut::from_slice(&mut cm, n, n, n),
            );
        });
    });
    group.bench_function(BenchmarkId::new("naive", n), |bench| {
        bench.iter(|| {
            par_gemm_naive(
                Trans::No,
                Trans::No,
                1.0,
                MatRef::from_slice(&a, n, n, n),
                MatRef::from_slice(&b, n, n, n),
                0.0,
                MatMut::from_slice(&mut cm, n, n, n),
            );
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_microkernels,
    bench_gemm_tiles,
    bench_syrk_tile,
    bench_trsm_tile,
    bench_par_gemm
);
criterion_main!(benches);
