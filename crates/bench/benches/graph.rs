//! Criterion groups for the million-task substrate: `graph_build`
//! (CSR submission path vs the seed's HashMap/per-task-Vec replica) and
//! `par_release` (parking work-stealing executor throughput on a wide
//! bodyless DAG — pure claim/release/park overhead, no kernel work).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use xk_bench::graphgen::{
    build_gemm_graph_legacy, build_wide_dag, gemm_graph_shell, submit_gemm_tasks,
};
use xk_runtime::run_parallel;

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group.sample_size(10);
    for &nt in &[16usize, 32] {
        let tasks = (nt * nt * nt) as u64;
        group.throughput(Throughput::Elements(tasks));
        // Tile registration is identical in both representations: it is
        // setup for the CSR side and absent from the legacy replica.
        group.bench_with_input(BenchmarkId::new("csr", tasks), &nt, |b, &nt| {
            b.iter_batched(
                || gemm_graph_shell(nt),
                |(mut g, handles)| {
                    submit_gemm_tasks(&mut g, &handles, nt);
                    assert_eq!(g.len() as u64, tasks);
                    g
                },
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("legacy", tasks), &nt, |b, &nt| {
            b.iter(|| {
                let g = build_gemm_graph_legacy(nt);
                assert_eq!(g.len() as u64, tasks);
                g
            });
        });
    }
    group.finish();
}

fn bench_par_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_release");
    group.sample_size(10);
    for &(layers, width) in &[(20usize, 200usize), (50, 500)] {
        let tasks = (layers * width) as u64;
        group.throughput(Throughput::Elements(tasks));
        group.bench_with_input(
            BenchmarkId::new("wide_dag", tasks),
            &(layers, width),
            |b, &(layers, width)| {
                b.iter(|| {
                    let mut g = build_wide_dag(layers, width);
                    let out = run_parallel(&mut g, 0);
                    assert_eq!(out.tasks_run as u64, tasks);
                    out
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_par_release);
criterion_main!(benches);
