//! [`FabricBuilder`]: the construction front door for [`FabricSpec`]s,
//! mirroring the `SimSession` builder idiom of `xk-runtime`.
//!
//! A fabric is declared hierarchically — GPUs, link overrides, switch and
//! socket grouping, an optional NVSwitch tier, optional node boundaries —
//! and [`FabricBuilder::build`] expands the declaration into the pairwise
//! tables [`FabricSpec`] routes over.

use crate::fabric::{FabricSpec, LinkSpec, SwitchTier};
use crate::link::{bw, lat, LinkClass};

/// Builder for [`FabricSpec`].
///
/// ```
/// use xk_topo::{bw, FabricBuilder, LinkClass};
///
/// // The paper's DGX-1 is one instance of the schema:
/// let dgx1 = FabricBuilder::named("dgx1")
///     .gpus(8)
///     .links(&[(0, 3), (0, 4), (1, 2), (1, 5), (2, 3), (4, 7), (5, 6), (6, 7)],
///            LinkClass::NvLink2, bw::NVLINK2)
///     .links(&[(0, 1), (0, 2), (1, 3), (2, 6), (3, 7), (4, 5), (4, 6), (5, 7)],
///            LinkClass::NvLink1, bw::NVLINK1)
///     .build();
/// assert_eq!(dgx1.fingerprint(), xk_topo::dgx1().fingerprint());
/// ```
#[derive(Clone, Debug)]
pub struct FabricBuilder {
    name: String,
    n_gpus: usize,
    local: LinkSpec,
    peer_default: LinkSpec,
    links: Vec<(usize, usize, LinkSpec)>,
    peer_table: Option<Vec<LinkSpec>>,
    host: LinkSpec,
    host_table: Option<Vec<LinkSpec>>,
    gpus_per_switch: usize,
    switches_per_socket: usize,
    switch_map: Option<Vec<usize>>,
    socket_map: Option<Vec<usize>>,
    switch_tier: Option<SwitchTier>,
    n_nodes: usize,
    node_map: Option<Vec<usize>>,
    inter_node: Option<LinkSpec>,
}

impl FabricBuilder {
    /// Starts a fabric declaration with the given display name.
    ///
    /// Defaults: PCIe peer links at [`bw::PCIE_P2P`], PCIe host links at
    /// [`bw::PCIE_HOST`], device-memory local copies, two GPUs per switch,
    /// two switches per socket, a single node.
    pub fn named(name: impl Into<String>) -> Self {
        FabricBuilder {
            name: name.into(),
            n_gpus: 0,
            local: LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY),
            peer_default: LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P),
            links: Vec::new(),
            peer_table: None,
            host: LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST),
            host_table: None,
            gpus_per_switch: 2,
            switches_per_socket: 2,
            switch_map: None,
            socket_map: None,
            switch_tier: None,
            n_nodes: 1,
            node_map: None,
            inter_node: None,
        }
    }

    /// Number of GPUs (required).
    pub fn gpus(mut self, n: usize) -> Self {
        self.n_gpus = n;
        self
    }

    /// Bandwidth of same-device copies (the `Local` diagonal).
    pub fn local_bandwidth(mut self, bandwidth: f64) -> Self {
        self.local = LinkSpec::new(LinkClass::Local, bandwidth);
        self
    }

    /// Default link for GPU pairs not covered by an override (PCIe P2P
    /// unless changed).
    pub fn peer_default(mut self, class: LinkClass, bandwidth: f64) -> Self {
        self.peer_default = LinkSpec::new(class, bandwidth);
        self
    }

    /// Symmetric link override for one GPU pair.
    pub fn link(mut self, a: usize, b: usize, class: LinkClass, bandwidth: f64) -> Self {
        self.links.push((a, b, LinkSpec::new(class, bandwidth)));
        self
    }

    /// Symmetric link override for a batch of GPU pairs.
    pub fn links(mut self, pairs: &[(usize, usize)], class: LinkClass, bandwidth: f64) -> Self {
        for &(a, b) in pairs {
            self.links.push((a, b, LinkSpec::new(class, bandwidth)));
        }
        self
    }

    /// Full `n × n` pairwise link table, overriding every per-pair setting
    /// (topology-surgery tools use this to carry a table verbatim).
    pub fn peer_table(mut self, table: Vec<LinkSpec>) -> Self {
        self.peer_table = Some(table);
        self
    }

    /// Uniform host↔GPU link (PCIe at [`bw::PCIE_HOST`] unless changed).
    pub fn host_link(mut self, class: LinkClass, bandwidth: f64) -> Self {
        self.host = LinkSpec::new(class, bandwidth);
        self
    }

    /// Full per-GPU host link table, overriding the uniform host link.
    pub fn host_table(mut self, table: Vec<LinkSpec>) -> Self {
        self.host_table = Some(table);
        self
    }

    /// Consecutive GPUs per PCIe switch (default 2, the DGX-1 layout).
    pub fn gpus_per_switch(mut self, k: usize) -> Self {
        self.gpus_per_switch = k;
        self
    }

    /// Consecutive switches per socket (default 2, the DGX-1 layout).
    pub fn switches_per_socket(mut self, k: usize) -> Self {
        self.switches_per_socket = k;
        self
    }

    /// Explicit GPU→switch table, overriding [`FabricBuilder::gpus_per_switch`].
    pub fn switch_map(mut self, map: Vec<usize>) -> Self {
        self.switch_map = Some(map);
        self
    }

    /// Explicit switch→socket table, overriding
    /// [`FabricBuilder::switches_per_socket`].
    pub fn socket_map(mut self, map: Vec<usize>) -> Self {
        self.socket_map = Some(map);
        self
    }

    /// A non-blocking NVSwitch plane: every same-node GPU pair becomes a
    /// [`LinkClass::NvSwitch`] link at the port bandwidth, crossing two hops
    /// of `hop_latency`.
    pub fn switch_tier(mut self, port_bandwidth: f64, hop_latency: f64) -> Self {
        self.switch_tier = Some(SwitchTier {
            port_bandwidth,
            hop_latency,
        });
        self
    }

    /// Splits the GPUs evenly over `k` nodes (consecutive blocks). Requires
    /// an [`FabricBuilder::inter_node`] link when `k > 1`.
    pub fn nodes(mut self, k: usize) -> Self {
        self.n_nodes = k;
        self
    }

    /// Explicit GPU→node table, overriding the even split of
    /// [`FabricBuilder::nodes`]. `n_nodes` becomes `max + 1`.
    pub fn node_map(mut self, map: Vec<usize>) -> Self {
        self.n_nodes = map.iter().copied().max().map_or(1, |m| m + 1);
        self.node_map = Some(map);
        self
    }

    /// The NIC/IB path between nodes: NIC-to-NIC bandwidth and a per-hop
    /// latency over `hops` hops (NIC, IB switch, NIC...). Cross-node GPU
    /// pairs get this bandwidth plus a PCIe crossing on each end; host
    /// reads from a remote node also funnel through it.
    pub fn inter_node(mut self, bandwidth: f64, per_hop_latency: f64, hops: usize) -> Self {
        self.inter_node = Some(LinkSpec {
            class: LinkClass::InterNode,
            bandwidth,
            latency: per_hop_latency * hops as f64,
        });
        self
    }

    /// Explicit inter-node link spec (topology-surgery tools).
    pub fn inter_node_spec(mut self, spec: LinkSpec) -> Self {
        self.inter_node = Some(spec);
        self
    }

    /// Assembles and validates the fabric.
    pub fn try_build(self) -> Result<FabricSpec, String> {
        let n = self.n_gpus;
        if n == 0 {
            return Err("fabric needs at least one GPU (call .gpus(n))".into());
        }
        let node_map = match &self.node_map {
            Some(m) => m.clone(),
            None if self.n_nodes > 1 => {
                if n % self.n_nodes != 0 {
                    return Err(format!(
                        "{n} GPUs do not split evenly over {} nodes",
                        self.n_nodes
                    ));
                }
                (0..n).map(|g| g / (n / self.n_nodes)).collect()
            }
            None => Vec::new(),
        };
        let node_of = |g: usize| node_map.get(g).copied().unwrap_or(0);
        if self.n_nodes > 1 && self.inter_node.is_none() {
            return Err("multi-node fabric needs an .inter_node(...) link".into());
        }

        let gg = match self.peer_table {
            Some(t) => t,
            None => {
                let mut gg = vec![self.peer_default; n * n];
                for g in 0..n {
                    gg[g * n + g] = self.local;
                }
                if let Some(tier) = &self.switch_tier {
                    let port = LinkSpec {
                        class: LinkClass::NvSwitch,
                        bandwidth: tier.port_bandwidth,
                        latency: 2.0 * tier.hop_latency,
                    };
                    for a in 0..n {
                        for b in 0..n {
                            if a != b && node_of(a) == node_of(b) {
                                gg[a * n + b] = port;
                            }
                        }
                    }
                }
                for &(a, b, spec) in &self.links {
                    if a.max(b) >= n {
                        return Err(format!("link override {a}↔{b} out of range"));
                    }
                    gg[a * n + b] = spec;
                    gg[b * n + a] = spec;
                }
                if let Some(nic) = &self.inter_node {
                    // Cross-node traffic is NIC-bound regardless of any
                    // same-node override: a PCIe crossing on each end plus
                    // the wire.
                    let cross = LinkSpec {
                        class: LinkClass::InterNode,
                        bandwidth: nic.bandwidth,
                        latency: 2.0 * lat::PCIE + nic.latency,
                    };
                    for a in 0..n {
                        for b in 0..n {
                            if node_of(a) != node_of(b) {
                                gg[a * n + b] = cross;
                            }
                        }
                    }
                }
                gg
            }
        };

        let host = match self.host_table {
            Some(t) => t,
            None => (0..n)
                .map(|g| {
                    if node_of(g) != 0 {
                        // Host memory lives on node 0: remote reads are
                        // NIC-bound end to end.
                        let nic = self.inter_node.as_ref().expect("checked above");
                        LinkSpec {
                            class: LinkClass::InterNode,
                            bandwidth: nic.bandwidth.min(self.host.bandwidth),
                            latency: self.host.latency + nic.latency,
                        }
                    } else {
                        self.host
                    }
                })
                .collect(),
        };

        let switch_map = match self.switch_map {
            Some(m) => m,
            None => {
                if self.gpus_per_switch == 0 {
                    return Err("gpus_per_switch must be at least 1".into());
                }
                (0..n).map(|g| g / self.gpus_per_switch).collect()
            }
        };
        let n_switches = switch_map.iter().copied().max().map_or(0, |m| m + 1);
        let socket_map = match self.socket_map {
            Some(m) => m,
            None => {
                if self.switches_per_socket == 0 {
                    return Err("switches_per_socket must be at least 1".into());
                }
                (0..n_switches).map(|s| s / self.switches_per_socket).collect()
            }
        };

        let n_nodes = if node_map.is_empty() { 1 } else { self.n_nodes };
        let inter_node = if n_nodes > 1 { self.inter_node } else { None };
        FabricSpec::from_parts(
            self.name,
            n,
            gg,
            host,
            switch_map,
            socket_map,
            node_map,
            n_nodes,
            inter_node,
            self.switch_tier,
        )
    }

    /// Assembles and validates the fabric.
    ///
    /// # Panics
    /// Panics if the declaration is inconsistent; see
    /// [`FabricBuilder::try_build`] for the fallible variant.
    pub fn build(self) -> FabricSpec {
        match self.try_build() {
            Ok(t) => t,
            Err(e) => panic!("inconsistent fabric declaration: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{BusSegment, Device};

    #[test]
    fn builder_defaults_reproduce_dgx1_tables() {
        // The hand-rolled legacy table construction, byte for byte.
        let n = 8;
        let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
        let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
        let mut gg = vec![pcie; n * n];
        for i in 0..n {
            gg[i * n + i] = local;
        }
        for &(a, b) in crate::DGX1_NVLINK2_EDGES.iter() {
            let s = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
            gg[a * n + b] = s;
            gg[b * n + a] = s;
        }
        for &(a, b) in crate::DGX1_NVLINK1_EDGES.iter() {
            let s = LinkSpec::new(LinkClass::NvLink1, bw::NVLINK1);
            gg[a * n + b] = s;
            gg[b * n + a] = s;
        }
        let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
        let reference = FabricSpec::from_tables(
            "dgx1",
            n,
            gg,
            vec![host; n],
            vec![0, 0, 1, 1, 2, 2, 3, 3],
            vec![0, 0, 1, 1],
        );
        assert_eq!(crate::dgx1().fingerprint(), reference.fingerprint());
    }

    #[test]
    fn empty_declaration_is_rejected() {
        assert!(FabricBuilder::named("empty").try_build().is_err());
        assert!(FabricBuilder::named("nodes-no-nic")
            .gpus(4)
            .nodes(2)
            .try_build()
            .is_err());
        assert!(FabricBuilder::named("uneven")
            .gpus(5)
            .nodes(2)
            .inter_node(bw::IB_NIC, lat::IB_HOP, 3)
            .try_build()
            .is_err());
    }

    #[test]
    fn switch_tier_expands_to_nvswitch_ports() {
        let t = FabricBuilder::named("tiered")
            .gpus(4)
            .switch_tier(bw::NVSWITCH_PORT, lat::NVSWITCH_HOP)
            .build();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let l = t.gpu_link(a, b);
                assert_eq!(l.class, LinkClass::NvSwitch);
                assert!((l.bandwidth - bw::NVSWITCH_PORT).abs() < 1.0);
                assert!((l.latency - 2.0 * lat::NVSWITCH_HOP).abs() < 1e-12);
                // Non-blocking plane: no shared segments.
                assert!(t.route(Device::Gpu(a), Device::Gpu(b)).segments.is_empty());
            }
        }
        assert!(t.switch_tier().is_some());
        assert!(t.nvlink_edges().is_empty());
    }

    #[test]
    fn two_node_fabric_routes_cross_both_nics() {
        let t = FabricBuilder::named("2node")
            .gpus(8)
            .peer_default(LinkClass::NvLink1, bw::NVLINK1)
            .nodes(2)
            .inter_node(bw::IB_NIC, lat::IB_HOP, 3)
            .build();
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        // Same-node pair: the NVLink default, no NIC involved.
        let same = t.route(Device::Gpu(0), Device::Gpu(1));
        assert_eq!(same.class, LinkClass::NvLink1);
        // Cross-node pair: NIC-bound, per-hop latency summed, both NICs
        // and both switch uplinks crossed.
        let cross = t.route(Device::Gpu(0), Device::Gpu(4));
        assert_eq!(cross.class, LinkClass::InterNode);
        assert!((cross.bandwidth - bw::IB_NIC).abs() < 1.0);
        assert!((cross.latency - (2.0 * lat::PCIE + 3.0 * lat::IB_HOP)).abs() < 1e-12);
        assert_eq!(
            cross.segments,
            vec![
                BusSegment::HostUplink(0),
                BusSegment::HostUplink(2),
                BusSegment::InterNode(0),
                BusSegment::InterNode(1),
            ]
        );
        // Host reads from the remote node funnel through both NICs too.
        let remote_host = t.route(Device::Host, Device::Gpu(4));
        assert_eq!(remote_host.class, LinkClass::InterNode);
        assert!(remote_host.segments.contains(&BusSegment::InterNode(0)));
        assert!(remote_host.segments.contains(&BusSegment::InterNode(1)));
        let local_host = t.route(Device::Host, Device::Gpu(0));
        assert_eq!(local_host.class, LinkClass::Pcie);
    }

    #[test]
    fn explicit_maps_override_grouping() {
        let t = FabricBuilder::named("mapped")
            .gpus(4)
            .switch_map(vec![0, 1, 1, 2])
            .socket_map(vec![0, 1, 1])
            .build();
        assert_eq!(t.n_switches(), 3);
        assert_eq!(t.switch_of(2), 1);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(3), 1);
    }
}
