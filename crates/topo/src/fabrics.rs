//! The fabric gallery: named machines built on [`crate::FabricBuilder`],
//! spanning the design space the paper's two heuristics react to — the
//! DGX-1 cube mesh (heterogeneous ranks), an NVSwitch all-to-all (uniform
//! ranks, topology-awareness is moot), a single-root PCIe box (every byte
//! fights for one uplink, optimistic D2D is everything) and a two-node IB
//! pair (the worst source is another machine).

use crate::builder::FabricBuilder;
use crate::fabric::FabricSpec;
use crate::link::{bw, lat, LinkClass};

/// A DGX-2-style NVSwitch machine: `n_gpus` V100s all-to-all through a
/// non-blocking switch plane at ~150 GB/s per port. Every peer has the same
/// rank, so the topology-aware heuristic has nothing to exploit — the
/// interesting question is whether it stays out of the way.
pub fn dgx2(n_gpus: usize) -> FabricSpec {
    FabricBuilder::named(format!("dgx2-{n_gpus}"))
        .gpus(n_gpus)
        .switch_tier(bw::NVSWITCH_PORT, lat::NVSWITCH_HOP)
        .gpus_per_switch(2)
        .switches_per_socket(n_gpus.div_ceil(4).max(1))
        .build()
}

/// A commodity PCIe-only box with a single root complex: every GPU hangs
/// off one switch, so all host traffic and all P2P traffic share a single
/// uplink. The brutal case for host re-reads — the optimistic
/// device-to-device heuristic matters most here.
pub fn pcie_box(n_gpus: usize) -> FabricSpec {
    FabricBuilder::named(format!("pcie-box-{n_gpus}"))
        .gpus(n_gpus)
        .gpus_per_switch(n_gpus)
        .switches_per_socket(1)
        .build()
}

/// Two nodes of `per_node` GPUs each, NVLink all-to-all inside a node,
/// joined by EDR-class NICs with per-hop latency (NIC, IB switch, NIC).
/// Host memory lives on node 0, so one logical GEMM spanning both nodes
/// pays the wire for every remote host read — sourcing from the right
/// *node*, not just the right link class, is what the topology-aware
/// heuristic must get right.
pub fn dual_node_ib(per_node: usize) -> FabricSpec {
    FabricBuilder::named(format!("dual-node-{per_node}x2"))
        .gpus(2 * per_node)
        .peer_default(LinkClass::NvLink1, bw::NVLINK1)
        .nodes(2)
        .inter_node(bw::IB_NIC, lat::IB_HOP, 3)
        .gpus_per_switch(2)
        .switches_per_socket(per_node.div_ceil(2).max(1))
        .build()
}

/// Every fabric of the gallery, DGX-1 first: the set the per-fabric bench
/// panels and the xk-check differential/metamorphic suites sweep.
pub fn gallery() -> Vec<FabricSpec> {
    vec![crate::dgx1(), dgx2(16), pcie_box(4), dual_node_ib(4)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Device;

    #[test]
    fn gallery_fabrics_validate_and_are_distinct() {
        let all = gallery();
        assert_eq!(all.len(), 4);
        for t in &all {
            t.validate().unwrap();
        }
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(
                    all[i].fingerprint(),
                    all[j].fingerprint(),
                    "{} vs {}",
                    all[i].name(),
                    all[j].name()
                );
            }
        }
    }

    #[test]
    fn dgx2_ranks_are_uniform() {
        let t = dgx2(16);
        assert_eq!(t.n_gpus(), 16);
        let r = t.perf_rank(0, 1);
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert_eq!(t.perf_rank(a, b), r);
                }
            }
        }
        // All P2P routes are port-to-port through the plane: no segments.
        assert!(t.route(Device::Gpu(0), Device::Gpu(15)).segments.is_empty());
    }

    #[test]
    fn pcie_box_shares_one_uplink() {
        let t = pcie_box(4);
        assert_eq!(t.n_switches(), 1);
        for g in 0..4 {
            let r = t.route(Device::Host, Device::Gpu(g));
            assert_eq!(r.segments, vec![crate::BusSegment::HostUplink(0)]);
        }
        // P2P also funnels through the same switch fabric.
        let p2p = t.route(Device::Gpu(0), Device::Gpu(3));
        assert_eq!(p2p.segments, vec![crate::BusSegment::HostUplink(0)]);
    }

    #[test]
    fn dual_node_prefers_same_node_sources() {
        let t = dual_node_ib(4);
        // Ladder: NIC < NVLink1 < local ⇒ same-node rank beats cross-node.
        assert!(t.perf_rank(4, 5) > t.perf_rank(4, 0));
        // The remote host link is NIC-bound.
        let remote = t.route(Device::Host, Device::Gpu(7));
        let local = t.route(Device::Host, Device::Gpu(0));
        assert!(remote.bandwidth <= local.bandwidth);
        assert!(remote.latency > local.latency);
    }
}
