//! Builders for alternative topologies used by tests, examples and the
//! "portability to other architectures" discussion of the paper (§V).

use crate::link::{bw, LinkClass};
use crate::topology::{LinkSpec, Topology};

fn local() -> LinkSpec {
    LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY)
}

/// A node whose GPUs only communicate through PCIe (no NVLink at all) —
/// the worst case for the topology-aware heuristic (every source is rank 0),
/// the best case for the optimistic heuristic (every host re-read hurts).
pub fn pcie_only(n_gpus: usize) -> Topology {
    assert!(n_gpus >= 1);
    let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
    let mut gg = vec![pcie; n_gpus * n_gpus];
    for i in 0..n_gpus {
        gg[i * n_gpus + i] = local();
    }
    let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
    // Two GPUs per switch, switches split over two sockets.
    let n_switches = n_gpus.div_ceil(2);
    let gpu_switch = (0..n_gpus).map(|g| g / 2).collect();
    let switch_socket = (0..n_switches).map(|s| s % 2).collect();
    Topology::from_tables(
        format!("pcie-only-{n_gpus}"),
        n_gpus,
        gg,
        vec![host; n_gpus],
        gpu_switch,
        switch_socket,
    )
}

/// A hypothetical node where every GPU pair has a double NVLink (NVSwitch /
/// DGX-2 style all-to-all). Topology-aware source selection is irrelevant
/// here because every peer has the same rank.
pub fn nvlink_all_to_all(n_gpus: usize) -> Topology {
    assert!(n_gpus >= 1);
    let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
    let mut gg = vec![nv2; n_gpus * n_gpus];
    for i in 0..n_gpus {
        gg[i * n_gpus + i] = local();
    }
    let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
    let n_switches = n_gpus.div_ceil(2);
    Topology::from_tables(
        format!("nvswitch-{n_gpus}"),
        n_gpus,
        gg,
        vec![host; n_gpus],
        (0..n_gpus).map(|g| g / 2).collect(),
        (0..n_switches).map(|s| s % 2).collect(),
    )
}

/// A Summit/Sierra-style node: 6 GPUs, 3 per POWER9 socket; GPUs of a socket
/// are all-to-all NVLink2; cross-socket GPU traffic goes through the X-bus
/// (modelled as PCIe-class); the host links are NVLink (~50 GB/s), so —
/// as §III-C of the paper predicts — the optimistic device-to-device
/// heuristic should bring little benefit here.
pub fn summit_node() -> Topology {
    let n = 6;
    let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
    let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
    let mut gg = vec![pcie; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                gg[i * n + j] = local();
            } else if i / 3 == j / 3 {
                gg[i * n + j] = nv2;
            }
        }
    }
    let host = LinkSpec::new(LinkClass::NvLinkHost, bw::NVLINK_HOST);
    Topology::from_tables(
        "summit-node",
        n,
        gg,
        vec![host; n],
        vec![0, 0, 0, 1, 1, 1],
        vec![0, 1],
    )
}

/// A unidirectional-ring-like topology: GPU `i` has a double NVLink to
/// `(i+1) % n` and a single NVLink to `(i+2) % n`; everything else is PCIe.
/// Useful to stress source selection with heterogeneous ranks on any `n`.
pub fn nvlink_ring(n_gpus: usize) -> Topology {
    assert!(n_gpus >= 3, "ring needs at least 3 GPUs");
    let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
    let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
    let nv1 = LinkSpec::new(LinkClass::NvLink1, bw::NVLINK1);
    let mut gg = vec![pcie; n_gpus * n_gpus];
    for i in 0..n_gpus {
        gg[i * n_gpus + i] = local();
    }
    let mut set = |a: usize, b: usize, s: LinkSpec| {
        gg[a * n_gpus + b] = s;
        gg[b * n_gpus + a] = s;
    };
    for i in 0..n_gpus {
        set(i, (i + 1) % n_gpus, nv2);
    }
    if n_gpus > 4 {
        for i in 0..n_gpus {
            set(i, (i + 2) % n_gpus, nv1);
        }
    }
    let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
    let n_switches = n_gpus.div_ceil(2);
    Topology::from_tables(
        format!("ring-{n_gpus}"),
        n_gpus,
        gg,
        vec![host; n_gpus],
        (0..n_gpus).map(|g| g / 2).collect(),
        (0..n_switches).map(|s| s % 2).collect(),
    )
}

/// Builds a topology from a GPU↔GPU bandwidth matrix in GB/s, classifying
/// each entry by thresholds (≥ 80 → NVLink2, ≥ 40 → NVLink1, else PCIe).
/// This mirrors calibrating against a measured matrix like the paper's
/// Fig. 2.
pub fn from_bandwidth_matrix_gbs(name: impl Into<String>, matrix: &[Vec<f64>]) -> Topology {
    let n = matrix.len();
    assert!(n >= 1 && matrix.iter().all(|row| row.len() == n));
    let mut gg = Vec::with_capacity(n * n);
    for (i, row) in matrix.iter().enumerate() {
        for (j, &gbs) in row.iter().enumerate() {
            // Symmetrize to satisfy validation against measurement noise,
            // then classify the symmetrized value.
            let sym = 0.5 * (gbs + matrix[j][i]);
            let class = if i == j {
                LinkClass::Local
            } else if sym >= 80.0 {
                LinkClass::NvLink2
            } else if sym >= 40.0 {
                LinkClass::NvLink1
            } else {
                LinkClass::Pcie
            };
            gg.push(LinkSpec::new(class, sym * 1e9));
        }
    }
    let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
    let n_switches = n.div_ceil(2);
    Topology::from_tables(
        name,
        n,
        gg,
        vec![host; n],
        (0..n).map(|g| g / 2).collect(),
        (0..n_switches).map(|s| s % 2).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_only_has_no_nvlink() {
        let t = pcie_only(4);
        assert!(t.nvlink_edges().is_empty());
        assert_eq!(t.n_gpus(), 4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(t.perf_rank(a, b), 0);
                }
            }
        }
    }

    #[test]
    fn all_to_all_is_uniform_rank2() {
        let t = nvlink_all_to_all(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(t.perf_rank(a, b), 2);
                }
            }
        }
    }

    #[test]
    fn summit_host_links_are_nvlink() {
        let t = summit_node();
        assert_eq!(t.host_link(0).class, LinkClass::NvLinkHost);
        assert_eq!(t.perf_rank(0, 1), 2); // same socket
        assert_eq!(t.perf_rank(0, 3), 0); // cross socket
        // Host NVLink routes have no shared PCIe segments.
        let r = t.route(crate::topology::Device::Host, crate::topology::Device::Gpu(0));
        assert!(r.segments.is_empty());
    }

    #[test]
    fn ring_valid_for_various_sizes() {
        for n in [3, 4, 5, 8, 12] {
            let t = nvlink_ring(n);
            t.validate().unwrap();
            assert_eq!(t.perf_rank(0, 1), 2);
        }
        // Ring of 8: neighbors at distance 2 get single links.
        let t = nvlink_ring(8);
        assert_eq!(t.perf_rank(0, 2), 1);
        assert_eq!(t.perf_rank(0, 4), 0);
    }

    #[test]
    fn from_matrix_round_trips_dgx1_classes() {
        let d = crate::dgx1();
        let m = d.bandwidth_matrix_gbs();
        let t = from_bandwidth_matrix_gbs("rebuilt", &m);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.perf_rank(a, b), d.perf_rank(a, b), "pair {a},{b}");
            }
        }
    }
}
