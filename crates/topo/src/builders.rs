//! Builders for alternative topologies used by tests, examples and the
//! "portability to other architectures" discussion of the paper (§V).
//! Each is a [`FabricBuilder`] declaration; the larger showcase machines
//! live in [`crate::fabrics`].

use crate::builder::FabricBuilder;
use crate::fabric::{FabricSpec, LinkSpec};
use crate::link::{bw, LinkClass};

/// A node whose GPUs only communicate through PCIe (no NVLink at all) —
/// the worst case for the topology-aware heuristic (every source is rank 0),
/// the best case for the optimistic heuristic (every host re-read hurts).
pub fn pcie_only(n_gpus: usize) -> FabricSpec {
    assert!(n_gpus >= 1);
    // Two GPUs per switch, switches alternating over two sockets.
    let n_switches = n_gpus.div_ceil(2);
    FabricBuilder::named(format!("pcie-only-{n_gpus}"))
        .gpus(n_gpus)
        .socket_map((0..n_switches).map(|s| s % 2).collect())
        .build()
}

/// A hypothetical node where every GPU pair has a double NVLink (the
/// pre-tier approximation of an NVSwitch all-to-all; see
/// [`crate::fabrics::dgx2`] for the real switch-tier model). Topology-aware
/// source selection is irrelevant here because every peer has the same rank.
pub fn nvlink_all_to_all(n_gpus: usize) -> FabricSpec {
    assert!(n_gpus >= 1);
    let n_switches = n_gpus.div_ceil(2);
    FabricBuilder::named(format!("nvswitch-{n_gpus}"))
        .gpus(n_gpus)
        .peer_default(LinkClass::NvLink2, bw::NVLINK2)
        .socket_map((0..n_switches).map(|s| s % 2).collect())
        .build()
}

/// A Summit/Sierra-style node: 6 GPUs, 3 per POWER9 socket; GPUs of a socket
/// are all-to-all NVLink2; cross-socket GPU traffic goes through the X-bus
/// (modelled as PCIe-class); the host links are NVLink (~50 GB/s), so —
/// as §III-C of the paper predicts — the optimistic device-to-device
/// heuristic should bring little benefit here.
pub fn summit_node() -> FabricSpec {
    let same_socket: Vec<(usize, usize)> =
        vec![(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
    FabricBuilder::named("summit-node")
        .gpus(6)
        .links(&same_socket, LinkClass::NvLink2, bw::NVLINK2)
        .host_link(LinkClass::NvLinkHost, bw::NVLINK_HOST)
        .gpus_per_switch(3)
        .switches_per_socket(1)
        .build()
}

/// A unidirectional-ring-like topology: GPU `i` has a double NVLink to
/// `(i+1) % n` and a single NVLink to `(i+2) % n`; everything else is PCIe.
/// Useful to stress source selection with heterogeneous ranks on any `n`.
pub fn nvlink_ring(n_gpus: usize) -> FabricSpec {
    assert!(n_gpus >= 3, "ring needs at least 3 GPUs");
    let n_switches = n_gpus.div_ceil(2);
    let mut b = FabricBuilder::named(format!("ring-{n_gpus}"))
        .gpus(n_gpus)
        .socket_map((0..n_switches).map(|s| s % 2).collect());
    for i in 0..n_gpus {
        b = b.link(i, (i + 1) % n_gpus, LinkClass::NvLink2, bw::NVLINK2);
    }
    if n_gpus > 4 {
        for i in 0..n_gpus {
            b = b.link(i, (i + 2) % n_gpus, LinkClass::NvLink1, bw::NVLINK1);
        }
    }
    b.build()
}

/// Builds a topology from a GPU↔GPU bandwidth matrix in GB/s, classifying
/// each entry by thresholds (≥ 80 → NVLink2, ≥ 40 → NVLink1, else PCIe).
/// This mirrors calibrating against a measured matrix like the paper's
/// Fig. 2.
pub fn from_bandwidth_matrix_gbs(name: impl Into<String>, matrix: &[Vec<f64>]) -> FabricSpec {
    let n = matrix.len();
    assert!(n >= 1 && matrix.iter().all(|row| row.len() == n));
    let mut gg = Vec::with_capacity(n * n);
    for (i, row) in matrix.iter().enumerate() {
        for (j, &gbs) in row.iter().enumerate() {
            // Symmetrize to satisfy validation against measurement noise,
            // then classify the symmetrized value.
            let sym = 0.5 * (gbs + matrix[j][i]);
            let class = if i == j {
                LinkClass::Local
            } else if sym >= 80.0 {
                LinkClass::NvLink2
            } else if sym >= 40.0 {
                LinkClass::NvLink1
            } else {
                LinkClass::Pcie
            };
            gg.push(LinkSpec::new(class, sym * 1e9));
        }
    }
    let n_switches = n.div_ceil(2);
    FabricBuilder::named(name)
        .gpus(n)
        .peer_table(gg)
        .socket_map((0..n_switches).map(|s| s % 2).collect())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_only_has_no_nvlink() {
        let t = pcie_only(4);
        assert!(t.nvlink_edges().is_empty());
        assert_eq!(t.n_gpus(), 4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(t.perf_rank(a, b), 0);
                }
            }
        }
    }

    #[test]
    fn all_to_all_is_uniform_rank() {
        let t = nvlink_all_to_all(8);
        // One bandwidth ladder step between peer links and local copies:
        // every peer ranks 0, every local copy ranks 1.
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(t.perf_rank(a, b), 0);
                } else {
                    assert_eq!(t.perf_rank(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn summit_host_links_are_nvlink() {
        let t = summit_node();
        assert_eq!(t.host_link(0).class, LinkClass::NvLinkHost);
        // Ladder {PCIe, NVLink2, local}: same-socket beats cross-socket.
        assert_eq!(t.perf_rank(0, 1), 1); // same socket
        assert_eq!(t.perf_rank(0, 3), 0); // cross socket
        // Host NVLink routes have no shared PCIe segments.
        let r = t.route(crate::fabric::Device::Host, crate::fabric::Device::Gpu(0));
        assert!(r.segments.is_empty());
    }

    #[test]
    fn ring_valid_for_various_sizes() {
        for n in [3, 4, 5, 8, 12] {
            let t = nvlink_ring(n);
            t.validate().unwrap();
            // The nearest neighbour is always the best-ranked peer.
            for other in 2..n - 1 {
                assert!(
                    t.perf_rank(0, 1) >= t.perf_rank(0, other),
                    "n={n} other={other}"
                );
            }
        }
        // Ring of 8 has all three ladder steps: double link, single link,
        // PCIe — the full DGX-1-style rank spread.
        let t = nvlink_ring(8);
        assert_eq!(t.perf_rank(0, 1), 2);
        assert_eq!(t.perf_rank(0, 2), 1);
        assert_eq!(t.perf_rank(0, 4), 0);
    }

    #[test]
    fn from_matrix_round_trips_dgx1_classes() {
        let d = crate::dgx1();
        let m = d.bandwidth_matrix_gbs();
        let t = from_bandwidth_matrix_gbs("rebuilt", &m);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.perf_rank(a, b), d.perf_rank(a, b), "pair {a},{b}");
            }
        }
    }
}
