//! Link classes and physical constants of the modelled interconnects.

use serde::{Deserialize, Serialize};

/// Classification of a point-to-point route, ordered by preference.
///
/// The ordering mirrors the *performance rank* reported by CUDA's
/// `cuDeviceGetP2PAttribute(CU_DEVICE_P2P_ATTRIBUTE_PERFORMANCE_RANK)`, which
/// the paper's topology-aware heuristic consumes: a route over two bonded
/// NVLinks beats one NVLink, which beats anything crossing PCIe.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub enum LinkClass {
    /// Route through host memory / PCIe fabric (lowest rank).
    Pcie,
    /// A single NVLink-2 brick (~48 GB/s measured on DGX-1).
    NvLink1,
    /// Two bonded NVLink-2 bricks (~96 GB/s measured on DGX-1).
    NvLink2,
    /// NVLink between a CPU and a GPU (POWER9/Summit style, ~50 GB/s).
    NvLinkHost,
    /// Same-device copy served by device memory.
    Local,
    // New variants are appended so the discriminants (and therefore the
    // derived `Hash` feeding `FabricSpec::fingerprint`) of the original
    // classes never move. The derived `Ord` is declaration order and is NOT
    // a quality order across the appended variants — rank queries must go
    // through `FabricSpec::perf_rank`, which orders by route bandwidth.
    /// A port into a non-blocking NVSwitch tier (DGX-2 style all-to-all).
    NvSwitch,
    /// An inter-node NIC/IB path (multi-node fabrics).
    InterNode,
}

impl LinkClass {
    /// The peer-to-peer performance rank used by the topology-aware
    /// heuristic. Higher is better. PCIe routes rank 0 — the heuristic only
    /// prefers them over reading from the host because they avoid consuming
    /// host-uplink bandwidth twice.
    pub fn perf_rank(self) -> u8 {
        match self {
            LinkClass::InterNode => 0,
            LinkClass::Pcie => 0,
            LinkClass::NvLink1 | LinkClass::NvLinkHost => 1,
            LinkClass::NvLink2 | LinkClass::NvSwitch => 2,
            LinkClass::Local => 3,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Pcie => "PCIe",
            LinkClass::NvLink1 => "NVLink x1",
            LinkClass::NvLink2 => "NVLink x2",
            LinkClass::NvLinkHost => "NVLink host",
            LinkClass::Local => "local",
            LinkClass::NvSwitch => "NVSwitch",
            LinkClass::InterNode => "NIC",
        }
    }
}

/// Measured bandwidths on the DGX-1 of the paper (Fig. 2), in bytes/second.
pub mod bw {
    /// Two bonded NVLink-2 bricks: ~96.4 GB/s measured.
    pub const NVLINK2: f64 = 96.4e9;
    /// One NVLink-2 brick: ~48.4 GB/s measured.
    pub const NVLINK1: f64 = 48.4e9;
    /// GPU↔GPU over the PCIe fabric: ~17.1 GB/s measured.
    pub const PCIE_P2P: f64 = 17.1e9;
    /// Host↔GPU over one x16 PCIe Gen3 interface. The paper quotes
    /// "4 PCIe 16x Gen3 buses at 16GB/s each" (signalling rate); sustained
    /// concurrent DMA against host memory lands lower.
    pub const PCIE_HOST: f64 = 12.5e9;
    /// V100 device-memory bandwidth as seen by same-device copies
    /// (~744–750 GB/s measured in Fig. 2's diagonal).
    pub const DEVICE_MEMORY: f64 = 747.0e9;
    /// QPI between the two Xeon sockets.
    pub const QPI: f64 = 19.2e9;
    /// POWER9-style NVLink between CPU and GPU (Summit node).
    pub const NVLINK_HOST: f64 = 50.0e9;
    /// One GPU port into a DGX-2-style NVSwitch plane: 6 NVLink-2 bricks
    /// bonded through the switch, ~150 GB/s per GPU.
    pub const NVSWITCH_PORT: f64 = 150.0e9;
    /// One EDR-InfiniBand-class NIC (~100 Gb/s signalling, ~12 GB/s
    /// sustained for GPUDirect-style transfers).
    pub const IB_NIC: f64 = 12.0e9;
}

/// Link latencies, in seconds.
pub mod lat {
    /// One-way NVLink latency.
    pub const NVLINK: f64 = 3.0e-6;
    /// One-way PCIe latency (includes DMA setup).
    pub const PCIE: f64 = 10.0e-6;
    /// Same-device copy launch overhead.
    pub const LOCAL: f64 = 1.0e-6;
    /// One hop through an NVSwitch plane (a GPU↔GPU route crosses two).
    pub const NVSWITCH_HOP: f64 = 1.0e-6;
    /// One hop of an inter-node IB path (NIC, switch, NIC...).
    pub const IB_HOP: f64 = 1.5e-6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_ordering_matches_link_quality() {
        assert!(LinkClass::NvLink2.perf_rank() > LinkClass::NvLink1.perf_rank());
        assert!(LinkClass::NvLink1.perf_rank() > LinkClass::Pcie.perf_rank());
        assert!(LinkClass::Local.perf_rank() > LinkClass::NvLink2.perf_rank());
        assert_eq!(
            LinkClass::NvLinkHost.perf_rank(),
            LinkClass::NvLink1.perf_rank()
        );
    }

    #[test]
    fn enum_order_is_rank_order_for_gpu_links() {
        // The derived Ord is used to sort candidate sources.
        assert!(LinkClass::NvLink2 > LinkClass::NvLink1);
        assert!(LinkClass::NvLink1 > LinkClass::Pcie);
    }

    #[test]
    fn bandwidth_constants_sane() {
        assert!(bw::NVLINK2 > bw::NVLINK1);
        assert!(bw::NVLINK1 > bw::PCIE_P2P);
        assert!(bw::PCIE_P2P > bw::PCIE_HOST * 0.5);
        assert!(bw::DEVICE_MEMORY > bw::NVLINK2);
    }
}
