//! # xk-topo — multi-GPU interconnect topologies
//!
//! Models the communication fabric of a multi-GPU node: NVLink bricks (one
//! or two bonded), PCIe switches with shared host uplinks, and the
//! inter-socket link. The star of the show is [`dgx1`], the exact NVIDIA
//! DGX-1 hybrid cube mesh of the paper (Fig. 1/Fig. 2), but custom
//! topologies can be built from a bandwidth matrix or with the builders in
//! [`builders`].
//!
//! Two queries drive the paper's heuristics:
//!
//! * [`Topology::perf_rank`] — the P2P performance rank between two GPUs,
//!   the model of `cuDeviceGetP2PAttribute` that the topology-aware source
//!   selection consumes.
//! * [`Topology::route`] — the end-to-end bandwidth/latency of a transfer
//!   plus the *shared bus segments* it crosses, which the simulated
//!   executor turns into engine reservations so that PCIe contention is
//!   physical, not statistical.
//!
//! ```
//! use xk_topo::{dgx1, Device};
//!
//! let t = dgx1();
//! // GPU0-GPU3 have a double NVLink: the preferred source for GPU3.
//! assert_eq!(t.perf_rank(0, 3), 2);
//! // Host->GPU crosses the GPU's PCIe switch uplink (shared by two GPUs).
//! let route = t.route(Device::Host, Device::Gpu(0));
//! assert_eq!(route.segments.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod builders;
mod dgx1;
mod link;
mod topology;

pub use dgx1::{
    dgx1, DGX1_GPU_MEMORY, DGX1_NVLINK1_EDGES, DGX1_NVLINK2_EDGES, DGX1_TABLE1, V100_PEAK_DP,
};
pub use link::{bw, lat, LinkClass};
pub use topology::{BusSegment, Device, LinkSpec, Route, Topology};
