//! # xk-topo — multi-GPU fabric descriptions
//!
//! Models the communication fabric of a multi-GPU platform as a general
//! [`FabricSpec`]: point-to-point links with class/bandwidth/latency, PCIe
//! switches with shared host uplinks, the inter-socket link, non-blocking
//! NVSwitch tiers, and node boundaries joined by NIC/IB links. The DGX-1
//! hybrid cube mesh of the paper ([`dgx1`]) is one instance of the schema —
//! declared through the same [`FabricBuilder`] as the NVSwitch, PCIe-only
//! and two-node machines in the [`fabrics`] gallery.
//!
//! Two queries drive the paper's heuristics:
//!
//! * [`FabricSpec::perf_rank`] — the P2P performance rank between two GPUs
//!   (the model of `cuDeviceGetP2PAttribute` that the topology-aware source
//!   selection consumes), derived from the fabric's own ladder of link
//!   bandwidths rather than hard-coded link classes.
//! * [`FabricSpec::route`] — the end-to-end bandwidth/latency of a transfer
//!   plus the *shared bus segments* it crosses, which the simulated
//!   executor turns into engine reservations so that PCIe (and NIC)
//!   contention is physical, not statistical.
//!
//! ```
//! use xk_topo::{dgx1, Device};
//!
//! let t = dgx1();
//! // GPU0-GPU3 have a double NVLink: the preferred source for GPU3.
//! assert_eq!(t.perf_rank(0, 3), 2);
//! // Host->GPU crosses the GPU's PCIe switch uplink (shared by two GPUs).
//! let route = t.route(Device::Host, Device::Gpu(0));
//! assert_eq!(route.segments.len(), 1);
//! ```

#![warn(missing_docs)]

mod builder;
pub mod builders;
mod dgx1;
mod fabric;
pub mod fabrics;
mod link;

pub use builder::FabricBuilder;
pub use dgx1::{
    dgx1, DGX1_GPU_MEMORY, DGX1_NVLINK1_EDGES, DGX1_NVLINK2_EDGES, DGX1_TABLE1, V100_PEAK_DP,
};
pub use fabric::{BusSegment, Device, FabricSpec, LinkSpec, Route, SwitchTier};
#[allow(deprecated)]
pub use fabric::Topology;
pub use link::{bw, lat, LinkClass};
