//! The NVIDIA DGX-1 (V100) node of the paper: 8 Tesla V100-SXM2 32 GB in a
//! hybrid cube-mesh NVLink-2 network, four PCIe Gen3 switches (two GPUs
//! each) and two Xeon E5-2698 v4 sockets (paper Fig. 1, Fig. 2, Table I).

use crate::builder::FabricBuilder;
use crate::fabric::FabricSpec;
use crate::link::{bw, LinkClass};

/// NVLink edges of the DGX-1 hybrid cube mesh with two bonded bricks
/// (~96 GB/s), extracted from the bandwidth matrix of the paper's Fig. 2.
pub const DGX1_NVLINK2_EDGES: [(usize, usize); 8] = [
    (0, 3),
    (0, 4),
    (1, 2),
    (1, 5),
    (2, 3),
    (4, 7),
    (5, 6),
    (6, 7),
];

/// NVLink edges with a single brick (~48 GB/s), from the same matrix.
pub const DGX1_NVLINK1_EDGES: [(usize, usize); 8] = [
    (0, 1),
    (0, 2),
    (1, 3),
    (2, 6),
    (3, 7),
    (4, 5),
    (4, 6),
    (5, 7),
];

/// GPU memory capacity per V100-SXM2 of the paper's machine, in bytes.
pub const DGX1_GPU_MEMORY: u64 = 32 * 1024 * 1024 * 1024;

/// Double-precision peak of one V100-SXM2, in FLOP/s (paper: 7.8 TFlop/s).
pub const V100_PEAK_DP: f64 = 7.8e12;

/// Human-readable platform summary matching the paper's Table I.
pub const DGX1_TABLE1: &[(&str, &str)] = &[
    ("Name", "Gemini (NVIDIA DGX-1)"),
    ("CPU", "2x Xeon(R) E5-2698 v4, 2.2GHz, 20 cores each"),
    ("GPU", "8x NVIDIA Tesla V100-SXM2, 32GB, CUDA-10.1"),
    ("Main memory", "512 GB"),
    ("CPU-GPU interconnect", "PCIe Gen3 x16, 4 switches, 2 GPUs per switch"),
    ("GPU-GPU interconnect", "NVLink-2 hybrid cube mesh"),
    ("OS", "GNU/Linux, kernel 4.19.146"),
];

/// Builds the DGX-1 fabric of the paper — one instance of the general
/// [`FabricSpec`] schema, declared through [`FabricBuilder`] like every
/// other fabric.
///
/// GPUs 0–3 sit on switches 0–1 (socket 0), GPUs 4–7 on switches 2–3
/// (socket 1); each switch hosts a consecutive GPU pair, matching Fig. 1.
/// The builder defaults (PCIe P2P peers, PCIe host links, two GPUs per
/// switch, two switches per socket) *are* the DGX-1 layout; only the cube
/// mesh's NVLink edges need declaring.
pub fn dgx1() -> FabricSpec {
    FabricBuilder::named("dgx1")
        .gpus(8)
        .links(&DGX1_NVLINK2_EDGES, LinkClass::NvLink2, bw::NVLINK2)
        .links(&DGX1_NVLINK1_EDGES, LinkClass::NvLink1, bw::NVLINK1)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Device;

    #[test]
    fn every_gpu_has_six_nvlink_bricks() {
        // Each V100 on a DGX-1 exposes 6 NVLink bricks: 2 double links + 2
        // single links per GPU.
        let t = dgx1();
        for g in 0..8 {
            let mut bricks = 0;
            for other in 0..8 {
                bricks += match t.gpu_link(g, other).class {
                    LinkClass::NvLink2 => 2,
                    LinkClass::NvLink1 => 1,
                    _ => 0,
                };
            }
            assert_eq!(bricks, 6, "gpu{g} has {bricks} bricks");
        }
    }

    #[test]
    fn edge_sets_are_disjoint() {
        for a in DGX1_NVLINK2_EDGES.iter() {
            assert!(!DGX1_NVLINK1_EDGES.contains(a));
        }
    }

    #[test]
    fn matches_fig2_spot_values() {
        // Spot-check entries of the paper's measured matrix (Fig. 2).
        let t = dgx1();
        let m = t.bandwidth_matrix_gbs();
        // 0-3 and 0-4: double NVLink ~96 GB/s.
        assert!((m[0][3] - 96.4).abs() < 1.0);
        assert!((m[0][4] - 96.4).abs() < 1.0);
        // 0-1 and 0-2: single NVLink ~48 GB/s.
        assert!((m[0][1] - 48.4).abs() < 1.0);
        // 0-5: PCIe ~17 GB/s.
        assert!((m[0][5] - 17.1).abs() < 1.0);
        // Diagonal: device memory ~747 GB/s.
        assert!((m[6][6] - 747.0).abs() < 5.0);
        // Symmetry.
        for i in 0..8 {
            for j in 0..8 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn sockets_split_four_four() {
        let t = dgx1();
        for g in 0..4 {
            assert_eq!(t.socket_of(g), 0);
        }
        for g in 4..8 {
            assert_eq!(t.socket_of(g), 1);
        }
        assert_eq!(t.n_switches(), 4);
    }

    #[test]
    fn cross_socket_pcie_route_crosses_intersocket_link() {
        let t = dgx1();
        let r = t.route(Device::Gpu(0), Device::Gpu(5));
        assert_eq!(r.class, LinkClass::Pcie);
        assert!(r
            .segments
            .contains(&crate::fabric::BusSegment::InterSocket));
    }

    #[test]
    fn same_switch_pairs_share_uplink() {
        let t = dgx1();
        assert_eq!(t.switch_of(0), t.switch_of(1));
        assert_eq!(t.switch_of(6), t.switch_of(7));
        assert_ne!(t.switch_of(1), t.switch_of(2));
    }

    #[test]
    fn perf_ranks_follow_fig2_colors() {
        let t = dgx1();
        assert_eq!(t.perf_rank(0, 3), 2); // green: 2 NVLinks
        assert_eq!(t.perf_rank(0, 1), 1); // orange: 1 NVLink
        assert_eq!(t.perf_rank(0, 7), 0); // white: PCIe
    }
}
