//! The fabric description layer: devices, links, switch tiers, shared bus
//! segments, node boundaries and hierarchical routing tables.
//!
//! [`FabricSpec`] is the general machine description; the DGX-1 of the paper
//! ([`crate::dgx1`]) is one instance of it, built through the same
//! [`crate::FabricBuilder`] as every other fabric in [`crate::fabrics`].

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::link::{lat, LinkClass};

/// A processing/memory resource of the platform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Device {
    /// Host CPUs + main memory (a single memory node in this model).
    Host,
    /// GPU with the given index.
    Gpu(usize),
}

impl Device {
    /// GPU index, if this is a GPU.
    pub fn gpu_index(self) -> Option<usize> {
        match self {
            Device::Gpu(i) => Some(i),
            Device::Host => None,
        }
    }

    /// True for [`Device::Host`].
    pub fn is_host(self) -> bool {
        matches!(self, Device::Host)
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Host => write!(f, "host"),
            Device::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// A shared bus resource that a route may cross.
///
/// Transfers whose routes cross the same segment contend for it (the
/// simulated executors map each segment to an [`xk_sim`] engine). NVLink
/// bricks are *not* segments: they are dedicated point-to-point and already
/// serialized by the per-device copy engines. NVSwitch planes are not
/// segments either — the tier is non-blocking at full bisection, so the only
/// contention point is each GPU's own port, which the per-GPU copy engines
/// already model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BusSegment {
    /// The x16 uplink between PCIe switch `sw` and its root complex. On a
    /// DGX-1 two GPUs hang off each switch, so their host traffic shares it.
    HostUplink(usize),
    /// The inter-socket link (QPI on the DGX-1's Xeons).
    InterSocket,
    /// The NIC of node `node`: every transfer entering or leaving the node
    /// funnels through it.
    InterNode(usize),
}

/// Physical characteristics of one point-to-point link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link classification (reporting + route segment derivation).
    pub class: LinkClass,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Convenience constructor with the default latency of the class.
    pub fn new(class: LinkClass, bandwidth: f64) -> Self {
        let latency = match class {
            LinkClass::Pcie => lat::PCIE,
            LinkClass::Local => lat::LOCAL,
            LinkClass::InterNode => lat::PCIE + 3.0 * lat::IB_HOP,
            _ => lat::NVLINK,
        };
        LinkSpec {
            class,
            bandwidth,
            latency,
        }
    }
}

/// A non-blocking switch plane connecting every GPU of a node all-to-all
/// (DGX-2 style NVSwitch).
///
/// The [`crate::FabricBuilder`] expands a tier into the pairwise link table
/// (each same-node pair gets a [`LinkClass::NvSwitch`] link at the port
/// bandwidth, crossing two hops); the spec keeps the tier itself so
/// fingerprints, reports and relabeling tools can see the structure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwitchTier {
    /// Bandwidth of one GPU's port into the plane, bytes/second. The plane
    /// itself is full-bisection, so the port is the only bottleneck.
    pub port_bandwidth: f64,
    /// Latency of one hop through the plane; a GPU↔GPU route crosses two.
    pub hop_latency: f64,
}

/// A resolved route between two devices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Classification of the route (that of its weakest hop).
    pub class: LinkClass,
    /// Sustained end-to-end bandwidth in bytes/second.
    pub bandwidth: f64,
    /// End-to-end latency in seconds.
    pub latency: f64,
    /// Shared bus segments crossed, in canonical order, deduplicated.
    pub segments: Vec<BusSegment>,
}

impl Route {
    /// Time in seconds to move `bytes` over this route, ignoring contention
    /// (contention is resolved by the executor's engine reservations).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

fn default_n_nodes() -> usize {
    1
}

/// A complete multi-GPU fabric description.
///
/// Construct one with [`crate::FabricBuilder`], the named constructors in
/// [`crate::fabrics`] / [`crate::builders`] / [`crate::dgx1()`], or
/// deserialize a custom one; [`FabricSpec::validate`] checks internal
/// consistency.
///
/// The spec is hierarchical: GPUs hang off PCIe switches, switches off
/// sockets, and (for multi-node fabrics) GPUs belong to nodes joined by
/// NIC/IB links. [`FabricSpec::route`] resolves any device pair against
/// those tables; [`FabricSpec::route_ref`] serves the same answer from a
/// lazily built routing table without allocating.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricSpec {
    name: String,
    n_gpus: usize,
    /// `n_gpus × n_gpus`, row-major; diagonal entries are `Local`.
    gpu_gpu: Vec<LinkSpec>,
    /// Host link per GPU.
    host_gpu: Vec<LinkSpec>,
    /// PCIe switch per GPU.
    gpu_switch: Vec<usize>,
    /// Socket per PCIe switch.
    switch_socket: Vec<usize>,
    /// Node per GPU; empty means "all on node 0" (single-node fabrics
    /// serialized before nodes existed deserialize to that).
    #[serde(default)]
    gpu_node: Vec<usize>,
    /// Number of nodes (1 for every single-node fabric).
    #[serde(default = "default_n_nodes")]
    n_nodes: usize,
    /// The NIC/IB link joining nodes, when `n_nodes > 1`.
    #[serde(default)]
    inter_node: Option<LinkSpec>,
    /// The NVSwitch plane the pairwise table was expanded from, if any.
    #[serde(default)]
    switch_tier: Option<SwitchTier>,
    /// Sorted distinct GPU↔GPU route bandwidths; `perf_rank` is the index
    /// into this ladder. Derived, never serialized.
    #[serde(skip)]
    rank_levels: OnceLock<Vec<f64>>,
    /// Flattened routing table over all device pairs. Derived lazily.
    #[serde(skip)]
    routes: OnceLock<Box<[Route]>>,
}

impl FabricSpec {
    /// Builds a single-node fabric from its raw tables (the legacy
    /// `Topology` constructor). Prefer [`crate::FabricBuilder`].
    ///
    /// # Panics
    /// Panics if the tables are inconsistent (see [`FabricSpec::validate`]).
    pub fn from_tables(
        name: impl Into<String>,
        n_gpus: usize,
        gpu_gpu: Vec<LinkSpec>,
        host_gpu: Vec<LinkSpec>,
        gpu_switch: Vec<usize>,
        switch_socket: Vec<usize>,
    ) -> Self {
        Self::from_parts(
            name.into(),
            n_gpus,
            gpu_gpu,
            host_gpu,
            gpu_switch,
            switch_socket,
            Vec::new(),
            1,
            None,
            None,
        )
        .expect("inconsistent topology tables")
    }

    /// Builds a fabric from every table, including the multi-node and
    /// switch-tier extensions. This is the single assembly point used by
    /// [`crate::FabricBuilder::try_build`] and topology-surgery tools.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        name: String,
        n_gpus: usize,
        gpu_gpu: Vec<LinkSpec>,
        host_gpu: Vec<LinkSpec>,
        gpu_switch: Vec<usize>,
        switch_socket: Vec<usize>,
        gpu_node: Vec<usize>,
        n_nodes: usize,
        inter_node: Option<LinkSpec>,
        switch_tier: Option<SwitchTier>,
    ) -> Result<Self, String> {
        let t = FabricSpec {
            name,
            n_gpus,
            gpu_gpu,
            host_gpu,
            gpu_switch,
            switch_socket,
            gpu_node,
            n_nodes,
            inter_node,
            switch_tier,
            rank_levels: OnceLock::new(),
            routes: OnceLock::new(),
        };
        t.validate()?;
        Ok(t)
    }

    /// Checks internal consistency: table sizes, symmetric GPU↔GPU links,
    /// `Local` diagonal, valid switch/socket indices, and — for multi-node
    /// fabrics — that exactly the cross-node pairs use NIC links.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_gpus;
        if self.gpu_gpu.len() != n * n {
            return Err(format!("gpu_gpu has {} entries, want {}", self.gpu_gpu.len(), n * n));
        }
        if self.host_gpu.len() != n {
            return Err(format!("host_gpu has {} entries, want {n}", self.host_gpu.len()));
        }
        if self.gpu_switch.len() != n {
            return Err(format!("gpu_switch has {} entries, want {n}", self.gpu_switch.len()));
        }
        for (i, &sw) in self.gpu_switch.iter().enumerate() {
            if sw >= self.switch_socket.len() {
                return Err(format!("gpu{i} references unknown switch {sw}"));
            }
        }
        for i in 0..n {
            let d = &self.gpu_gpu[i * n + i];
            if d.class != LinkClass::Local {
                return Err(format!("diagonal entry for gpu{i} is {:?}, want Local", d.class));
            }
            for j in 0..n {
                let a = &self.gpu_gpu[i * n + j];
                let b = &self.gpu_gpu[j * n + i];
                if a.class != b.class {
                    return Err(format!("asymmetric link class between gpu{i} and gpu{j}"));
                }
                if (a.bandwidth - b.bandwidth).abs() > 1e-3 {
                    return Err(format!("asymmetric bandwidth between gpu{i} and gpu{j}"));
                }
                if !(a.bandwidth.is_finite() && a.bandwidth > 0.0) {
                    return Err(format!("non-positive bandwidth between gpu{i} and gpu{j}"));
                }
            }
        }
        for (i, h) in self.host_gpu.iter().enumerate() {
            if !(h.bandwidth.is_finite() && h.bandwidth > 0.0) {
                return Err(format!("non-positive host bandwidth for gpu{i}"));
            }
        }
        // Multi-node extension invariants.
        if self.n_nodes == 0 {
            return Err("n_nodes must be at least 1".into());
        }
        if !self.gpu_node.is_empty() && self.gpu_node.len() != n {
            return Err(format!("gpu_node has {} entries, want {n} or 0", self.gpu_node.len()));
        }
        for (i, &nd) in self.gpu_node.iter().enumerate() {
            if nd >= self.n_nodes {
                return Err(format!("gpu{i} references unknown node {nd}"));
            }
        }
        if self.n_nodes > 1 && self.inter_node.is_none() {
            return Err("multi-node fabric without an inter_node link".into());
        }
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let cross = self.node_of(i) != self.node_of(j);
                let is_nic = self.gpu_gpu[i * n + j].class == LinkClass::InterNode;
                if cross && !is_nic {
                    return Err(format!("gpu{i}↔gpu{j} cross nodes but are not a NIC link"));
                }
                if !cross && is_nic {
                    return Err(format!("gpu{i}↔gpu{j} share a node but use a NIC link"));
                }
            }
        }
        for (i, h) in self.host_gpu.iter().enumerate() {
            if (h.class == LinkClass::InterNode) != (self.node_of(i) != 0) {
                return Err(format!(
                    "host link of gpu{i} must be a NIC link iff the GPU is on a remote node"
                ));
            }
        }
        Ok(())
    }

    /// Fabric display name (e.g. `"dgx1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Number of PCIe switches.
    pub fn n_switches(&self) -> usize {
        self.switch_socket.len()
    }

    /// Number of nodes (1 for single-node fabrics).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// PCIe switch hosting `gpu`.
    pub fn switch_of(&self, gpu: usize) -> usize {
        self.gpu_switch[gpu]
    }

    /// Socket hosting `gpu` (through its PCIe switch).
    pub fn socket_of(&self, gpu: usize) -> usize {
        self.switch_socket[self.gpu_switch[gpu]]
    }

    /// Socket hosting PCIe switch `sw`.
    pub fn socket_of_switch(&self, sw: usize) -> usize {
        self.switch_socket[sw]
    }

    /// Node hosting `gpu` (0 for single-node fabrics; the host memory of a
    /// multi-node fabric lives on node 0).
    pub fn node_of(&self, gpu: usize) -> usize {
        self.gpu_node.get(gpu).copied().unwrap_or(0)
    }

    /// The NIC/IB link joining nodes, when this is a multi-node fabric.
    pub fn inter_node(&self) -> Option<&LinkSpec> {
        self.inter_node.as_ref()
    }

    /// The NVSwitch plane the pairwise table was expanded from, if any.
    pub fn switch_tier(&self) -> Option<&SwitchTier> {
        self.switch_tier.as_ref()
    }

    /// Raw GPU↔GPU link spec.
    pub fn gpu_link(&self, a: usize, b: usize) -> &LinkSpec {
        &self.gpu_gpu[a * self.n_gpus + b]
    }

    /// Raw host↔GPU link spec.
    pub fn host_link(&self, gpu: usize) -> &LinkSpec {
        &self.host_gpu[gpu]
    }

    /// The peer-to-peer performance rank between two GPUs, as the paper's
    /// heuristic reads it from `cuDeviceGetP2PAttribute`. Higher is better.
    ///
    /// The rank is *derived*: it is the position of the pair's link
    /// bandwidth in the sorted ladder of distinct GPU↔GPU link bandwidths
    /// of this fabric. On the DGX-1 that reproduces the paper's ranks
    /// exactly (PCIe = 0, one NVLink brick = 1, two bricks = 2, local = 3);
    /// on other fabrics it adapts to whatever bandwidth classes exist
    /// instead of hard-coding DGX-1 link classes.
    pub fn perf_rank(&self, a: usize, b: usize) -> u8 {
        let bw = self.gpu_link(a, b).bandwidth;
        let levels = self.rank_levels.get_or_init(|| {
            let mut v: Vec<f64> = self.gpu_gpu.iter().map(|l| l.bandwidth).collect();
            v.sort_by(|x, y| x.partial_cmp(y).expect("validated: finite bandwidths"));
            v.dedup_by(|x, y| x.to_bits() == y.to_bits());
            v
        });
        let idx = levels
            .iter()
            .position(|l| l.to_bits() == bw.to_bits())
            .expect("gpu_gpu bandwidth missing from its own ladder");
        idx.min(u8::MAX as usize) as u8
    }

    /// Resolves the route between two devices.
    ///
    /// * GPU↔GPU over NVLink or an NVSwitch port: the dedicated path, no
    ///   shared segments.
    /// * GPU↔GPU over PCIe: bandwidth of the P2P PCIe path; crosses the host
    ///   uplinks of both switches and, across sockets, the inter-socket link.
    /// * GPU↔GPU across nodes: crosses both switch uplinks and both NICs.
    /// * Host↔GPU over PCIe: crosses the GPU's switch uplink.
    /// * Host↔GPU over host NVLink (POWER9-style): dedicated, no segments.
    /// * Host↔GPU across nodes: host memory lives on node 0, so the route
    ///   crosses the GPU's uplink and both nodes' NICs.
    /// * Same device: local copy.
    pub fn route(&self, src: Device, dst: Device) -> Route {
        match (src, dst) {
            (Device::Host, Device::Host) => Route {
                class: LinkClass::Local,
                bandwidth: crate::link::bw::DEVICE_MEMORY,
                latency: lat::LOCAL,
                segments: Vec::new(),
            },
            (Device::Gpu(a), Device::Gpu(b)) if a == b => {
                let spec = self.gpu_link(a, a);
                Route {
                    class: LinkClass::Local,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments: Vec::new(),
                }
            }
            (Device::Gpu(a), Device::Gpu(b)) => {
                let spec = self.gpu_link(a, b);
                let segments = match spec.class {
                    LinkClass::Pcie => self.pcie_p2p_segments(a, b),
                    LinkClass::InterNode => self.inter_node_segments(a, b),
                    _ => Vec::new(),
                };
                Route {
                    class: spec.class,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments,
                }
            }
            (Device::Host, Device::Gpu(g)) | (Device::Gpu(g), Device::Host) => {
                let spec = self.host_link(g);
                let segments = match spec.class {
                    LinkClass::Pcie => vec![BusSegment::HostUplink(self.gpu_switch[g])],
                    LinkClass::InterNode => vec![
                        BusSegment::HostUplink(self.gpu_switch[g]),
                        BusSegment::InterNode(0),
                        BusSegment::InterNode(self.node_of(g)),
                    ],
                    _ => Vec::new(),
                };
                Route {
                    class: spec.class,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments,
                }
            }
        }
    }

    /// The same answer as [`FabricSpec::route`], served from a lazily built
    /// flattened routing table — the executors' hot path, free of per-call
    /// allocation.
    pub fn route_ref(&self, src: Device, dst: Device) -> &Route {
        let n = self.n_gpus;
        let routes = self.routes.get_or_init(|| {
            let dev = |i: usize| if i == n { Device::Host } else { Device::Gpu(i) };
            let mut v = Vec::with_capacity((n + 1) * (n + 1));
            for s in 0..=n {
                for d in 0..=n {
                    v.push(self.route(dev(s), dev(d)));
                }
            }
            v.into_boxed_slice()
        });
        let idx = |d: Device| d.gpu_index().unwrap_or(n);
        &routes[idx(src) * (n + 1) + idx(dst)]
    }

    fn pcie_p2p_segments(&self, a: usize, b: usize) -> Vec<BusSegment> {
        let (sa, sb) = (self.gpu_switch[a], self.gpu_switch[b]);
        let mut segs = Vec::with_capacity(3);
        if sa == sb {
            // Peer traffic can stay inside the switch but still shares its
            // internal fabric with host traffic of that switch.
            segs.push(BusSegment::HostUplink(sa));
        } else {
            segs.push(BusSegment::HostUplink(sa.min(sb)));
            segs.push(BusSegment::HostUplink(sa.max(sb)));
            if self.switch_socket[sa] != self.switch_socket[sb] {
                segs.push(BusSegment::InterSocket);
            }
        }
        segs
    }

    fn inter_node_segments(&self, a: usize, b: usize) -> Vec<BusSegment> {
        let (sa, sb) = (self.gpu_switch[a], self.gpu_switch[b]);
        let (na, nb) = (self.node_of(a), self.node_of(b));
        vec![
            BusSegment::HostUplink(sa.min(sb)),
            BusSegment::HostUplink(sa.max(sb)),
            BusSegment::InterNode(na.min(nb)),
            BusSegment::InterNode(na.max(nb)),
        ]
    }

    /// Analytic GPU↔GPU bandwidth matrix in GB/s (the model's version of the
    /// paper's Fig. 2, before any contention).
    pub fn bandwidth_matrix_gbs(&self) -> Vec<Vec<f64>> {
        let n = self.n_gpus;
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| self.gpu_link(i, j).bandwidth / 1e9)
                    .collect()
            })
            .collect()
    }

    /// A deterministic 64-bit digest of every table that influences routing
    /// and timing: the memoization key component that distinguishes runs on
    /// different platforms (`xk-bench`'s `RunCache`, `xk-serve`'s query
    /// keys).
    ///
    /// Stable within a process (and across processes, since the hasher is
    /// keyed with zeros); floats are hashed by their bit patterns. The
    /// multi-node and switch-tier extensions are hashed only when present,
    /// so every fingerprint minted before they existed — the DGX-1's in
    /// particular — is unchanged.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.n_gpus.hash(&mut h);
        for l in self.gpu_gpu.iter().chain(&self.host_gpu) {
            l.class.hash(&mut h);
            l.bandwidth.to_bits().hash(&mut h);
            l.latency.to_bits().hash(&mut h);
        }
        self.gpu_switch.hash(&mut h);
        self.switch_socket.hash(&mut h);
        if self.n_nodes > 1 {
            self.n_nodes.hash(&mut h);
            self.gpu_node.hash(&mut h);
            if let Some(l) = &self.inter_node {
                l.class.hash(&mut h);
                l.bandwidth.to_bits().hash(&mut h);
                l.latency.to_bits().hash(&mut h);
            }
        }
        if let Some(tier) = &self.switch_tier {
            tier.port_bandwidth.to_bits().hash(&mut h);
            tier.hop_latency.to_bits().hash(&mut h);
        }
        h.finish()
    }

    /// All GPU pairs `(a, b)` with `a < b` connected by at least one
    /// dedicated point-to-point NVLink. NVSwitch ports are intentionally
    /// excluded: a GPU's bricks are bonded into one port into the plane, so
    /// concurrent transfers of one GPU share that port (the per-GPU copy
    /// engines), unlike cube-mesh bricks which are per-peer.
    pub fn nvlink_edges(&self) -> Vec<(usize, usize, LinkClass)> {
        let mut edges = Vec::new();
        for a in 0..self.n_gpus {
            for b in a + 1..self.n_gpus {
                let c = self.gpu_link(a, b).class;
                if matches!(c, LinkClass::NvLink1 | LinkClass::NvLink2) {
                    edges.push((a, b, c));
                }
            }
        }
        edges
    }

    /// Topology surgery: a copy of this fabric with every off-diagonal
    /// GPU↔GPU link rewritten by `f`. The rewrite is applied once per
    /// unordered pair `(a < b)` and mirrored, so link symmetry — which
    /// [`FabricSpec::validate`] enforces — is preserved by construction.
    /// Every other table (host links, switches, nodes, tiers) is kept.
    ///
    /// This is the primitive behind link-coalition valuation: the Shapley
    /// attribution layer re-runs the simulator on fabrics where subsets of
    /// NVLink edges are downgraded to their PCIe fallback, and the caller
    /// must not be able to produce an inconsistent spec while doing so —
    /// hence a closure over pairs rather than raw table access.
    pub fn map_gpu_links(
        &self,
        name: impl Into<String>,
        mut f: impl FnMut(usize, usize, &LinkSpec) -> LinkSpec,
    ) -> Result<Self, String> {
        let n = self.n_gpus;
        let mut gpu_gpu = self.gpu_gpu.clone();
        for a in 0..n {
            for b in a + 1..n {
                let link = f(a, b, &self.gpu_gpu[a * n + b]);
                gpu_gpu[a * n + b] = link;
                gpu_gpu[b * n + a] = link;
            }
        }
        FabricSpec::from_parts(
            name.into(),
            n,
            gpu_gpu,
            self.host_gpu.clone(),
            self.gpu_switch.clone(),
            self.switch_socket.clone(),
            self.gpu_node.clone(),
            self.n_nodes,
            self.inter_node,
            self.switch_tier,
        )
    }
}

/// The legacy name of [`FabricSpec`], kept as a thin shim for one release.
#[deprecated(note = "renamed to FabricSpec; construct fabrics with FabricBuilder")]
pub type Topology = FabricSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::bw;

    fn tiny() -> FabricSpec {
        // 2 GPUs on one switch, NVLink2 between them.
        let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
        let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
        let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
        FabricSpec::from_tables(
            "tiny",
            2,
            vec![local, nv2, nv2, local],
            vec![host, host],
            vec![0, 0],
            vec![0],
        )
    }

    #[test]
    fn nvlink_route_has_no_segments() {
        let t = tiny();
        let r = t.route(Device::Gpu(0), Device::Gpu(1));
        assert_eq!(r.class, LinkClass::NvLink2);
        assert!(r.segments.is_empty());
        assert!((r.bandwidth - bw::NVLINK2).abs() < 1.0);
    }

    #[test]
    fn host_route_crosses_uplink() {
        let t = tiny();
        let r = t.route(Device::Host, Device::Gpu(1));
        assert_eq!(r.class, LinkClass::Pcie);
        assert_eq!(r.segments, vec![BusSegment::HostUplink(0)]);
    }

    #[test]
    fn local_route() {
        let t = tiny();
        let r = t.route(Device::Gpu(0), Device::Gpu(0));
        assert_eq!(r.class, LinkClass::Local);
        assert!(r.segments.is_empty());
    }

    #[test]
    fn transfer_time_includes_latency() {
        let t = tiny();
        let r = t.route(Device::Host, Device::Gpu(0));
        let time = r.transfer_time(16_000_000);
        assert!((time - (lat::PCIE + 16e6 / bw::PCIE_HOST)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
        let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
        let nv1 = LinkSpec::new(LinkClass::NvLink1, bw::NVLINK1);
        let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
        let t = FabricSpec::from_parts(
            "bad".into(),
            2,
            vec![local, nv2, nv1, local],
            vec![host, host],
            vec![0, 0],
            vec![0],
            Vec::new(),
            1,
            None,
            None,
        );
        assert!(t.is_err());
    }

    #[test]
    fn perf_rank_is_bandwidth_ladder_position() {
        let t = tiny();
        // Ladder: {NVLINK2, DEVICE_MEMORY} → peer rank 0, local rank 1.
        assert_eq!(t.perf_rank(0, 1), 0);
        assert_eq!(t.perf_rank(0, 0), 1);
    }

    #[test]
    fn route_ref_matches_route() {
        let t = crate::dgx1();
        let n = t.n_gpus();
        let devices: Vec<Device> = (0..n).map(Device::Gpu).chain([Device::Host]).collect();
        for &s in &devices {
            for &d in &devices {
                assert_eq!(*t.route_ref(s, d), t.route(s, d), "{s}->{d}");
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_topologies() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), crate::dgx1().fingerprint());
    }

    #[test]
    fn map_gpu_links_rewrites_pairs_symmetrically() {
        let t = crate::dgx1();
        let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
        let cut = t
            .map_gpu_links("dgx1-cut01", |a, b, l| {
                if (a, b) == (0, 1) {
                    pcie
                } else {
                    *l
                }
            })
            .expect("surgery keeps the spec valid");
        assert_eq!(cut.gpu_link(0, 1).class, LinkClass::Pcie);
        assert_eq!(cut.gpu_link(1, 0).class, LinkClass::Pcie);
        // Everything else untouched, including the diagonal.
        assert_eq!(cut.gpu_link(0, 0).class, LinkClass::Local);
        assert_eq!(cut.gpu_link(2, 3).class, t.gpu_link(2, 3).class);
        assert_eq!(cut.nvlink_edges().len(), t.nvlink_edges().len() - 1);
        // Identity surgery reproduces the link tables bit-for-bit.
        let same = t.map_gpu_links("dgx1", |_, _, l| *l).unwrap();
        assert_eq!(same.fingerprint(), t.fingerprint());
    }
}
