//! The platform topology model: devices, links, routes and shared bus
//! segments.

use serde::{Deserialize, Serialize};

use crate::link::{lat, LinkClass};

/// A processing/memory resource of the platform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Device {
    /// Host CPUs + main memory (a single memory node in this model).
    Host,
    /// GPU with the given index.
    Gpu(usize),
}

impl Device {
    /// GPU index, if this is a GPU.
    pub fn gpu_index(self) -> Option<usize> {
        match self {
            Device::Gpu(i) => Some(i),
            Device::Host => None,
        }
    }

    /// True for [`Device::Host`].
    pub fn is_host(self) -> bool {
        matches!(self, Device::Host)
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Host => write!(f, "host"),
            Device::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// A shared bus resource that a route may cross.
///
/// Transfers whose routes cross the same segment contend for it (the
/// simulated executors map each segment to an [`xk_sim`] engine). NVLink
/// bricks are *not* segments: they are dedicated point-to-point and already
/// serialized by the per-device copy engines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BusSegment {
    /// The x16 uplink between PCIe switch `sw` and its root complex. On a
    /// DGX-1 two GPUs hang off each switch, so their host traffic shares it.
    HostUplink(usize),
    /// The inter-socket link (QPI on the DGX-1's Xeons).
    InterSocket,
}

/// Physical characteristics of one point-to-point link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link classification (drives the heuristic's performance rank).
    pub class: LinkClass,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Convenience constructor with the default latency of the class.
    pub fn new(class: LinkClass, bandwidth: f64) -> Self {
        let latency = match class {
            LinkClass::Pcie => lat::PCIE,
            LinkClass::Local => lat::LOCAL,
            _ => lat::NVLINK,
        };
        LinkSpec {
            class,
            bandwidth,
            latency,
        }
    }
}

/// A resolved route between two devices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Classification of the route (that of its weakest hop).
    pub class: LinkClass,
    /// Sustained end-to-end bandwidth in bytes/second.
    pub bandwidth: f64,
    /// End-to-end latency in seconds.
    pub latency: f64,
    /// Shared bus segments crossed, in canonical order, deduplicated.
    pub segments: Vec<BusSegment>,
}

impl Route {
    /// Time in seconds to move `bytes` over this route, ignoring contention
    /// (contention is resolved by the executor's engine reservations).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// A complete multi-GPU node description.
///
/// Construct one with the builders in [`crate::builders`] or
/// [`crate::dgx1()`], or deserialize a custom one; [`Topology::validate`]
/// checks internal consistency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    n_gpus: usize,
    /// `n_gpus × n_gpus`, row-major; diagonal entries are `Local`.
    gpu_gpu: Vec<LinkSpec>,
    /// Host link per GPU.
    host_gpu: Vec<LinkSpec>,
    /// PCIe switch per GPU.
    gpu_switch: Vec<usize>,
    /// Socket per PCIe switch.
    switch_socket: Vec<usize>,
}

impl Topology {
    /// Builds a topology from its raw tables. Prefer the named builders.
    ///
    /// # Panics
    /// Panics if the tables are inconsistent (see [`Topology::validate`]).
    pub fn from_tables(
        name: impl Into<String>,
        n_gpus: usize,
        gpu_gpu: Vec<LinkSpec>,
        host_gpu: Vec<LinkSpec>,
        gpu_switch: Vec<usize>,
        switch_socket: Vec<usize>,
    ) -> Self {
        let t = Topology {
            name: name.into(),
            n_gpus,
            gpu_gpu,
            host_gpu,
            gpu_switch,
            switch_socket,
        };
        t.validate().expect("inconsistent topology tables");
        t
    }

    /// Checks internal consistency: table sizes, symmetric GPU↔GPU links,
    /// `Local` diagonal, and valid switch/socket indices.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_gpus;
        if self.gpu_gpu.len() != n * n {
            return Err(format!("gpu_gpu has {} entries, want {}", self.gpu_gpu.len(), n * n));
        }
        if self.host_gpu.len() != n {
            return Err(format!("host_gpu has {} entries, want {n}", self.host_gpu.len()));
        }
        if self.gpu_switch.len() != n {
            return Err(format!("gpu_switch has {} entries, want {n}", self.gpu_switch.len()));
        }
        for (i, &sw) in self.gpu_switch.iter().enumerate() {
            if sw >= self.switch_socket.len() {
                return Err(format!("gpu{i} references unknown switch {sw}"));
            }
        }
        for i in 0..n {
            let d = &self.gpu_gpu[i * n + i];
            if d.class != LinkClass::Local {
                return Err(format!("diagonal entry for gpu{i} is {:?}, want Local", d.class));
            }
            for j in 0..n {
                let a = &self.gpu_gpu[i * n + j];
                let b = &self.gpu_gpu[j * n + i];
                if a.class != b.class {
                    return Err(format!("asymmetric link class between gpu{i} and gpu{j}"));
                }
                if (a.bandwidth - b.bandwidth).abs() > 1e-3 {
                    return Err(format!("asymmetric bandwidth between gpu{i} and gpu{j}"));
                }
                if !(a.bandwidth.is_finite() && a.bandwidth > 0.0) {
                    return Err(format!("non-positive bandwidth between gpu{i} and gpu{j}"));
                }
            }
        }
        for (i, h) in self.host_gpu.iter().enumerate() {
            if !(h.bandwidth.is_finite() && h.bandwidth > 0.0) {
                return Err(format!("non-positive host bandwidth for gpu{i}"));
            }
        }
        Ok(())
    }

    /// Topology display name (e.g. `"dgx1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Number of PCIe switches.
    pub fn n_switches(&self) -> usize {
        self.switch_socket.len()
    }

    /// PCIe switch hosting `gpu`.
    pub fn switch_of(&self, gpu: usize) -> usize {
        self.gpu_switch[gpu]
    }

    /// Socket hosting `gpu` (through its PCIe switch).
    pub fn socket_of(&self, gpu: usize) -> usize {
        self.switch_socket[self.gpu_switch[gpu]]
    }

    /// Raw GPU↔GPU link spec.
    pub fn gpu_link(&self, a: usize, b: usize) -> &LinkSpec {
        &self.gpu_gpu[a * self.n_gpus + b]
    }

    /// Raw host↔GPU link spec.
    pub fn host_link(&self, gpu: usize) -> &LinkSpec {
        &self.host_gpu[gpu]
    }

    /// The peer-to-peer performance rank between two GPUs, as the paper's
    /// heuristic reads it from `cuDeviceGetP2PAttribute`. Higher is better.
    pub fn perf_rank(&self, a: usize, b: usize) -> u8 {
        self.gpu_link(a, b).class.perf_rank()
    }

    /// Resolves the route between two devices.
    ///
    /// * GPU↔GPU over NVLink: the dedicated link, no shared segments.
    /// * GPU↔GPU over PCIe: bandwidth of the P2P PCIe path; crosses the host
    ///   uplinks of both switches and, across sockets, the inter-socket link.
    /// * Host↔GPU over PCIe: crosses the GPU's switch uplink.
    /// * Host↔GPU over host NVLink (POWER9-style): dedicated, no segments.
    /// * Same device: local copy.
    pub fn route(&self, src: Device, dst: Device) -> Route {
        match (src, dst) {
            (Device::Host, Device::Host) => Route {
                class: LinkClass::Local,
                bandwidth: crate::link::bw::DEVICE_MEMORY,
                latency: lat::LOCAL,
                segments: Vec::new(),
            },
            (Device::Gpu(a), Device::Gpu(b)) if a == b => {
                let spec = self.gpu_link(a, a);
                Route {
                    class: LinkClass::Local,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments: Vec::new(),
                }
            }
            (Device::Gpu(a), Device::Gpu(b)) => {
                let spec = self.gpu_link(a, b);
                let segments = if spec.class == LinkClass::Pcie {
                    self.pcie_p2p_segments(a, b)
                } else {
                    Vec::new()
                };
                Route {
                    class: spec.class,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments,
                }
            }
            (Device::Host, Device::Gpu(g)) | (Device::Gpu(g), Device::Host) => {
                let spec = self.host_link(g);
                let segments = if spec.class == LinkClass::Pcie {
                    vec![BusSegment::HostUplink(self.gpu_switch[g])]
                } else {
                    Vec::new()
                };
                Route {
                    class: spec.class,
                    bandwidth: spec.bandwidth,
                    latency: spec.latency,
                    segments,
                }
            }
        }
    }

    fn pcie_p2p_segments(&self, a: usize, b: usize) -> Vec<BusSegment> {
        let (sa, sb) = (self.gpu_switch[a], self.gpu_switch[b]);
        let mut segs = Vec::with_capacity(3);
        if sa == sb {
            // Peer traffic can stay inside the switch but still shares its
            // internal fabric with host traffic of that switch.
            segs.push(BusSegment::HostUplink(sa));
        } else {
            segs.push(BusSegment::HostUplink(sa.min(sb)));
            segs.push(BusSegment::HostUplink(sa.max(sb)));
            if self.switch_socket[sa] != self.switch_socket[sb] {
                segs.push(BusSegment::InterSocket);
            }
        }
        segs
    }

    /// Analytic GPU↔GPU bandwidth matrix in GB/s (the model's version of the
    /// paper's Fig. 2, before any contention).
    pub fn bandwidth_matrix_gbs(&self) -> Vec<Vec<f64>> {
        let n = self.n_gpus;
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| self.gpu_link(i, j).bandwidth / 1e9)
                    .collect()
            })
            .collect()
    }

    /// A deterministic 64-bit digest of every table that influences routing
    /// and timing: the memoization key component that distinguishes runs on
    /// different platforms (`xk-bench`'s `RunCache`).
    ///
    /// Stable within a process (and across processes, since the hasher is
    /// keyed with zeros); floats are hashed by their bit patterns.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.n_gpus.hash(&mut h);
        for l in self.gpu_gpu.iter().chain(&self.host_gpu) {
            l.class.hash(&mut h);
            l.bandwidth.to_bits().hash(&mut h);
            l.latency.to_bits().hash(&mut h);
        }
        self.gpu_switch.hash(&mut h);
        self.switch_socket.hash(&mut h);
        h.finish()
    }

    /// All GPU pairs `(a, b)` with `a < b` connected by at least one NVLink.
    pub fn nvlink_edges(&self) -> Vec<(usize, usize, LinkClass)> {
        let mut edges = Vec::new();
        for a in 0..self.n_gpus {
            for b in a + 1..self.n_gpus {
                let c = self.gpu_link(a, b).class;
                if matches!(c, LinkClass::NvLink1 | LinkClass::NvLink2) {
                    edges.push((a, b, c));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::bw;

    fn tiny() -> Topology {
        // 2 GPUs on one switch, NVLink2 between them.
        let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
        let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
        let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
        Topology::from_tables(
            "tiny",
            2,
            vec![local, nv2, nv2, local],
            vec![host, host],
            vec![0, 0],
            vec![0],
        )
    }

    #[test]
    fn nvlink_route_has_no_segments() {
        let t = tiny();
        let r = t.route(Device::Gpu(0), Device::Gpu(1));
        assert_eq!(r.class, LinkClass::NvLink2);
        assert!(r.segments.is_empty());
        assert!((r.bandwidth - bw::NVLINK2).abs() < 1.0);
    }

    #[test]
    fn host_route_crosses_uplink() {
        let t = tiny();
        let r = t.route(Device::Host, Device::Gpu(1));
        assert_eq!(r.class, LinkClass::Pcie);
        assert_eq!(r.segments, vec![BusSegment::HostUplink(0)]);
    }

    #[test]
    fn local_route() {
        let t = tiny();
        let r = t.route(Device::Gpu(0), Device::Gpu(0));
        assert_eq!(r.class, LinkClass::Local);
        assert!(r.segments.is_empty());
    }

    #[test]
    fn transfer_time_includes_latency() {
        let t = tiny();
        let r = t.route(Device::Host, Device::Gpu(0));
        let time = r.transfer_time(16_000_000);
        assert!((time - (lat::PCIE + 16e6 / bw::PCIE_HOST)).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
        let nv2 = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
        let nv1 = LinkSpec::new(LinkClass::NvLink1, bw::NVLINK1);
        let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
        let t = Topology {
            name: "bad".into(),
            n_gpus: 2,
            gpu_gpu: vec![local, nv2, nv1, local],
            host_gpu: vec![host, host],
            gpu_switch: vec![0, 0],
            switch_socket: vec![0],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn perf_rank_reads_link_class() {
        let t = tiny();
        assert_eq!(t.perf_rank(0, 1), 2);
    }

    #[test]
    fn fingerprint_distinguishes_topologies() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), crate::dgx1().fingerprint());
    }
}
