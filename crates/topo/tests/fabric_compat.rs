//! Byte-identity of the legacy `Topology` surface through the `FabricSpec`
//! redesign: `dgx1()` routes, perf ranks and fingerprints must be exactly
//! what they were before the fabric API existed.

use xk_topo::{builders, dgx1, fabrics, Device, FabricSpec, LinkClass, LinkSpec};

/// The deprecated alias is the same type: one intentional call site proving
/// the shim keeps compiling (and producing identical answers) for existing
/// downstream code.
#[allow(deprecated)]
#[test]
fn deprecated_topology_alias_is_fabric_spec() {
    let via_alias: xk_topo::Topology = dgx1();
    let via_spec: FabricSpec = dgx1();
    assert_eq!(via_alias.fingerprint(), via_spec.fingerprint());
    assert_eq!(
        via_alias.route(Device::Gpu(0), Device::Gpu(5)),
        via_spec.route(Device::Gpu(0), Device::Gpu(5))
    );
}

/// Replays the pre-redesign fingerprint algorithm (name, n_gpus, every link
/// spec's class/bandwidth-bits/latency-bits, switch and socket tables, in
/// that exact sequence) against the new `fingerprint()`. The extension
/// fields are hashed only when present, so every single-node fabric must
/// digest to the legacy value.
fn legacy_fingerprint(t: &FabricSpec) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.name().hash(&mut h);
    t.n_gpus().hash(&mut h);
    let links: Vec<&LinkSpec> = (0..t.n_gpus())
        .flat_map(|a| (0..t.n_gpus()).map(move |b| t.gpu_link(a, b)))
        .chain((0..t.n_gpus()).map(|g| t.host_link(g)))
        .collect();
    for l in links {
        l.class.hash(&mut h);
        l.bandwidth.to_bits().hash(&mut h);
        l.latency.to_bits().hash(&mut h);
    }
    let gpu_switch: Vec<usize> = (0..t.n_gpus()).map(|g| t.switch_of(g)).collect();
    let switch_socket: Vec<usize> = (0..t.n_switches()).map(|s| t.socket_of_switch(s)).collect();
    gpu_switch.hash(&mut h);
    switch_socket.hash(&mut h);
    h.finish()
}

#[test]
fn single_node_fingerprints_match_legacy_algorithm() {
    for t in [
        dgx1(),
        builders::pcie_only(4),
        builders::nvlink_all_to_all(8),
        builders::summit_node(),
        builders::nvlink_ring(8),
    ] {
        assert_eq!(t.fingerprint(), legacy_fingerprint(&t), "{}", t.name());
    }
}

#[test]
fn extended_fabrics_diverge_from_legacy_digest() {
    // The extensions must be part of the digest (a dual-node fabric is not
    // the same machine as its node-stripped table dump).
    let t = fabrics::dual_node_ib(4);
    assert_ne!(t.fingerprint(), legacy_fingerprint(&t));
    let t = fabrics::dgx2(16);
    assert_ne!(t.fingerprint(), legacy_fingerprint(&t));
}

/// The full DGX-1 route surface against a hand-rolled legacy-table replica:
/// every device pair, every field, including segment lists.
#[test]
fn dgx1_routes_match_legacy_tables_exactly()  {
    let t = dgx1();
    let legacy = legacy_dgx1_tables();
    assert_eq!(t.fingerprint(), legacy.fingerprint());
    let devices: Vec<Device> = (0..8).map(Device::Gpu).chain([Device::Host]).collect();
    for &s in &devices {
        for &d in &devices {
            assert_eq!(t.route(s, d), legacy.route(s, d), "{s}->{d}");
            assert_eq!(*t.route_ref(s, d), legacy.route(s, d), "{s}->{d} (cached)");
        }
    }
}

fn legacy_dgx1_tables() -> FabricSpec {
    use xk_topo::{bw, DGX1_NVLINK1_EDGES, DGX1_NVLINK2_EDGES};
    let n = 8;
    let local = LinkSpec::new(LinkClass::Local, bw::DEVICE_MEMORY);
    let pcie = LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P);
    let mut gg = vec![pcie; n * n];
    for i in 0..n {
        gg[i * n + i] = local;
    }
    for &(a, b) in DGX1_NVLINK2_EDGES.iter() {
        let s = LinkSpec::new(LinkClass::NvLink2, bw::NVLINK2);
        gg[a * n + b] = s;
        gg[b * n + a] = s;
    }
    for &(a, b) in DGX1_NVLINK1_EDGES.iter() {
        let s = LinkSpec::new(LinkClass::NvLink1, bw::NVLINK1);
        gg[a * n + b] = s;
        gg[b * n + a] = s;
    }
    let host = LinkSpec::new(LinkClass::Pcie, bw::PCIE_HOST);
    FabricSpec::from_tables(
        "dgx1",
        n,
        gg,
        vec![host; n],
        vec![0, 0, 1, 1, 2, 2, 3, 3],
        vec![0, 0, 1, 1],
    )
}

/// Satellite regression: the derived (bandwidth-ladder) perf ranks must pin
/// the paper's DGX-1 ranks exactly — the hard-coded link-class ranks of the
/// pre-redesign implementation, cell by cell.
#[test]
fn dgx1_perf_ranks_pin_table1() {
    let t = dgx1();
    for a in 0..8 {
        for b in 0..8 {
            let expected = t.gpu_link(a, b).class.perf_rank();
            assert_eq!(t.perf_rank(a, b), expected, "pair {a},{b}");
        }
    }
    // Spot values straight from Fig. 2's colours.
    assert_eq!(t.perf_rank(0, 3), 2); // green: 2 NVLinks
    assert_eq!(t.perf_rank(0, 1), 1); // orange: 1 NVLink
    assert_eq!(t.perf_rank(0, 7), 0); // white: PCIe
    assert_eq!(t.perf_rank(5, 5), 3); // diagonal: local
}
