//! Pinned regression case promoted from `properties.proptest-regressions`.
//!
//! The proptest corpus file is only consulted when the property tests run
//! (which requires the `proptest` dev-dependency); this plain test pins the
//! shrunken counterexample permanently so it runs in every build.

use xk_topo::{builders, Device};

/// Corpus entry `13e72c…`: a maximally-asymmetric 2-GPU bandwidth matrix
/// (88.2 GB/s one way, 5 GB/s the other). The builder must symmetrize so
/// perf ranks, route classes and route bandwidths agree in both directions.
#[test]
fn asymmetric_matrix_builds_symmetric_topology() {
    let m = vec![vec![700.0, 88.202_144_275_000_01], vec![5.0, 700.0]];
    let n = m.len();
    let t = builders::from_bandwidth_matrix_gbs("arb", &m);
    t.validate().unwrap();
    for a in 0..n {
        for b in 0..n {
            assert_eq!(t.perf_rank(a, b), t.perf_rank(b, a));
            let r1 = t.route(Device::Gpu(a), Device::Gpu(b));
            let r2 = t.route(Device::Gpu(b), Device::Gpu(a));
            assert_eq!(r1.class, r2.class);
            assert!((r1.bandwidth - r2.bandwidth).abs() < 1e-6);
        }
    }
}
