//! Property-based and serde round-trip tests for topologies.

use proptest::prelude::*;
use xk_topo::{builders, dgx1, Device, FabricSpec};

fn arb_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(5.0f64..120.0, n), n).prop_map(
        move |mut m| {
            for i in 0..n {
                m[i][i] = 700.0;
            }
            m
        },
    )
}

proptest! {
    /// Topologies built from arbitrary bandwidth matrices validate and have
    /// symmetric perf ranks and routes.
    #[test]
    fn matrix_built_topologies_are_symmetric(m in (2usize..8).prop_flat_map(arb_matrix)) {
        let n = m.len();
        let t = builders::from_bandwidth_matrix_gbs("arb", &m);
        t.validate().unwrap();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(t.perf_rank(a, b), t.perf_rank(b, a));
                let r1 = t.route(Device::Gpu(a), Device::Gpu(b));
                let r2 = t.route(Device::Gpu(b), Device::Gpu(a));
                prop_assert_eq!(r1.class, r2.class);
                prop_assert!((r1.bandwidth - r2.bandwidth).abs() < 1e-6);
            }
        }
    }

    /// Every route has strictly positive bandwidth, and transfer time is
    /// monotone in the byte count.
    #[test]
    fn transfer_time_monotone(bytes1 in 1u64..1u64<<30, bytes2 in 1u64..1u64<<30) {
        let t = dgx1();
        let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        for a in 0..8usize {
            for b in 0..8usize {
                let r = t.route(Device::Gpu(a), Device::Gpu(b));
                prop_assert!(r.bandwidth > 0.0);
                prop_assert!(r.transfer_time(lo) <= r.transfer_time(hi));
            }
        }
    }
}

#[test]
fn serde_round_trip_preserves_routes() {
    let t = dgx1();
    let json = serde_json::to_string(&t).unwrap();
    let back: FabricSpec = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    for a in 0..8 {
        for b in 0..8 {
            assert_eq!(
                t.route(Device::Gpu(a), Device::Gpu(b)),
                back.route(Device::Gpu(a), Device::Gpu(b))
            );
        }
    }
    assert_eq!(t.name(), back.name());
}

#[test]
fn dgx1_fig2_full_matrix_classes() {
    // The full class pattern of Fig. 2: 8 green (96) cells per triangle,
    // 8 orange (48), the rest PCIe.
    let t = dgx1();
    let mut nv2 = 0;
    let mut nv1 = 0;
    let mut pcie = 0;
    for a in 0..8 {
        for b in a + 1..8 {
            match t.perf_rank(a, b) {
                2 => nv2 += 1,
                1 => nv1 += 1,
                0 => pcie += 1,
                _ => unreachable!(),
            }
        }
    }
    assert_eq!((nv2, nv1, pcie), (8, 8, 12));
}

#[test]
fn summit_vs_dgx1_host_bandwidth() {
    // §III-C: on Summit the host links are fast NVLink, so host reads are
    // much cheaper than on the DGX-1 — the premise for the optimistic
    // heuristic mattering less there.
    let d = dgx1();
    let s = builders::summit_node();
    let dr = d.route(Device::Host, Device::Gpu(0));
    let sr = s.route(Device::Host, Device::Gpu(0));
    assert!(sr.bandwidth > 2.0 * dr.bandwidth);
}
