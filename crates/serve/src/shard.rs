//! Lock-striped concurrent run cache with single-flight admission.
//!
//! The PR 1 `RunCache` kept every memoized run behind one `Mutex<HashMap>`;
//! that is correct but serializes every lookup of a high-rate query front
//! end, and concurrent misses of the *same* key each paid a full DES run.
//! [`ShardedCache`] fixes both:
//!
//! * **Lock striping** — the table is split over [`ShardedCache::n_shards`]
//!   independent mutexes, indexed by [`QueryKey::shard_hash`] (topology
//!   fingerprint, then `(library, routine)`). Lookups of different
//!   configuration families proceed in parallel; a lock is only ever held
//!   for a hash-map probe, never across a simulation.
//! * **Single-flight admission** — the first thread to miss a key becomes
//!   its *leader* and simulates; concurrent lookups of the same key park on
//!   the leader's [`Flight`] and observe the leader's exact result
//!   (bit-identical: the result object is shared, not recomputed). A
//!   thundering herd of N identical queries costs one DES run.
//!
//! The stats distinguish the three outcomes — [`CacheStats::hits`] (answer
//! was resident), [`CacheStats::coalesced`] (parked on an in-flight
//! leader), [`CacheStats::misses`] (led a computation) — so a waiter is no
//! longer miscounted as a miss.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use xk_baselines::{RunError, RunResult};

use crate::key::QueryKey;

/// The cached value: a finished run or its memoized error.
pub type RunOutcome = Result<RunResult, RunError>;

/// How a lookup was answered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    /// The key was resident in the cache.
    Hit,
    /// Parked on another thread's in-flight computation of the same key.
    Coalesced,
    /// This caller led the computation.
    Miss,
}

/// Hit/coalesce/miss counters, for run reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from resident entries.
    pub hits: u64,
    /// Lookups that parked on an in-flight leader (single-flight).
    pub coalesced: u64,
    /// Lookups that led a computation.
    pub misses: u64,
}

impl CacheStats {
    /// Lookups that did not simulate (hits + coalesced) over all lookups,
    /// in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.coalesced + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }
}

/// State of one in-flight computation, shared between its leader and the
/// waiters parked on it.
#[derive(Debug)]
enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader finished; every waiter observes this exact outcome.
    Done(RunOutcome),
    /// The leader was dropped without filling (it panicked or was
    /// abandoned); waiters must retry admission.
    Abandoned,
}

/// Rendezvous point of one in-flight computation.
#[derive(Debug)]
pub struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Parks until the leader resolves this flight. `Some(outcome)` is the
    /// leader's result; `None` means the leader abandoned the computation
    /// and the caller must re-admit.
    pub fn wait(&self) -> Option<RunOutcome> {
        let mut st = self.state.lock().unwrap();
        loop {
            match &*st {
                FlightState::Pending => st = self.cv.wait(st).unwrap(),
                FlightState::Done(outcome) => return Some(outcome.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn resolve(&self, to: FlightState) {
        *self.state.lock().unwrap() = to;
        self.cv.notify_all();
    }
}

/// A resident entry or a claim on one being computed.
#[derive(Debug)]
enum Slot {
    Ready(RunOutcome),
    InFlight(Arc<Flight>),
}

/// Outcome of [`ShardedCache::admit`].
pub enum Admission<'c> {
    /// The key is resident: here is its outcome.
    Hit(RunOutcome),
    /// Another thread is computing this key: park on the flight.
    Wait(Arc<Flight>),
    /// The caller is now the leader: compute, then [`LeadGuard::fill`].
    Lead(LeadGuard<'c>),
}

/// Leadership of one in-flight key. Fill it with the computed outcome;
/// dropping it unfilled (e.g. a panic during the simulation) marks the
/// flight abandoned so parked waiters wake up and retry admission.
pub struct LeadGuard<'c> {
    cache: &'c ShardedCache,
    key: QueryKey,
    flight: Arc<Flight>,
    filled: bool,
}

impl LeadGuard<'_> {
    /// The key this guard leads.
    pub fn key(&self) -> QueryKey {
        self.key
    }

    /// Publishes the computed outcome: the entry becomes resident and
    /// every parked waiter observes exactly this value.
    pub fn fill(mut self, outcome: RunOutcome) -> RunOutcome {
        self.filled = true;
        let shard = self.cache.shard(&self.key);
        shard
            .lock()
            .unwrap()
            .insert(self.key, Slot::Ready(outcome.clone()));
        self.flight.resolve(FlightState::Done(outcome.clone()));
        outcome
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.filled {
            let shard = self.cache.shard(&self.key);
            let mut map = shard.lock().unwrap();
            // Only remove our own claim: fill() or clear() may have
            // already replaced the slot.
            if matches!(map.get(&self.key), Some(Slot::InFlight(f)) if Arc::ptr_eq(f, &self.flight))
            {
                map.remove(&self.key);
            }
            drop(map);
            self.flight.resolve(FlightState::Abandoned);
        }
    }
}

/// The lock-striped, single-flight memo table over simulated runs.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Box<[Mutex<HashMap<QueryKey, Slot>>]>,
    mask: u64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
}

/// Default shard count: enough stripes that the full `(library, routine)`
/// cross product of one topology spreads out, cheap enough to sit in every
/// figure driver.
pub const DEFAULT_SHARDS: usize = 64;

impl Default for ShardedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCache {
    /// An empty cache with [`DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with `shards` stripes (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<Mutex<HashMap<QueryKey, Slot>>> =
            (0..n).map(|_| Mutex::new(HashMap::new())).collect();
        ShardedCache {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of stripes.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The stripe `key` maps to (stable; exposed for spread diagnostics).
    pub fn shard_index(&self, key: &QueryKey) -> usize {
        (key.shard_hash() & self.mask) as usize
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<HashMap<QueryKey, Slot>> {
        &self.shards[self.shard_index(key)]
    }

    /// One admission step: hit, park, or lead. Does not touch the
    /// counters — [`ShardedCache::get_or_compute`] (and the batch driver)
    /// count at resolution so an abandoned-leader retry is not counted
    /// twice.
    pub fn admit(&self, key: QueryKey) -> Admission<'_> {
        let mut map = self.shard(&key).lock().unwrap();
        match map.get(&key) {
            Some(Slot::Ready(outcome)) => Admission::Hit(outcome.clone()),
            Some(Slot::InFlight(flight)) => Admission::Wait(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::new());
                map.insert(key, Slot::InFlight(Arc::clone(&flight)));
                drop(map);
                Admission::Lead(LeadGuard {
                    cache: self,
                    key,
                    flight,
                    filled: false,
                })
            }
        }
    }

    /// Looks `key` up, computing it with `compute` on a miss. Exactly one
    /// concurrent caller per key runs `compute`; the rest park and observe
    /// the leader's outcome. Returns the outcome and how it was obtained.
    pub fn get_or_compute(
        &self,
        key: QueryKey,
        compute: impl FnOnce() -> RunOutcome,
    ) -> (RunOutcome, Source) {
        let mut compute = Some(compute);
        loop {
            match self.admit(key) {
                Admission::Hit(outcome) => {
                    self.record(Source::Hit);
                    return (outcome, Source::Hit);
                }
                Admission::Wait(flight) => {
                    if let Some(outcome) = flight.wait() {
                        self.record(Source::Coalesced);
                        return (outcome, Source::Coalesced);
                    }
                    // Leader abandoned: retry admission (we may lead now).
                }
                Admission::Lead(guard) => {
                    let f = compute.take().expect("leadership is won at most once");
                    let outcome = guard.fill(f());
                    self.record(Source::Miss);
                    return (outcome, Source::Miss);
                }
            }
        }
    }

    /// Peeks for a resident entry without claiming leadership and without
    /// touching the counters (the interpolation tier peeks before deciding
    /// whether it must simulate; the engine records the resolution).
    pub fn peek(&self, key: &QueryKey) -> Option<RunOutcome> {
        match self.shard(key).lock().unwrap().get(key) {
            Some(Slot::Ready(outcome)) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Bumps the counter for one resolved lookup (the batch driver
    /// resolves admissions itself and records through this).
    pub fn record(&self, source: Source) {
        match source {
            Source::Hit => &self.hits,
            Source::Coalesced => &self.coalesced,
            Source::Miss => &self.misses,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Current hit/coalesce/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of resident (finished) entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident entry and resets the counters. In-flight
    /// computations are left to finish; their leaders re-insert on fill.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard
                .lock()
                .unwrap()
                .retain(|_, slot| matches!(slot, Slot::InFlight(_)));
        }
        self.hits.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_baselines::{Library, RunParams};
    use xk_kernels::Routine;
    use xk_topo::dgx1;

    fn key(n: usize) -> QueryKey {
        QueryKey::new(
            Library::CublasXt,
            &dgx1(),
            &RunParams {
                routine: Routine::Gemm,
                n,
                tile: 1024,
                data_on_device: false,
            },
        )
    }

    fn fake(seconds: f64) -> RunOutcome {
        Ok(RunResult {
            seconds,
            tflops: 1.0 / seconds,
            trace: Default::default(),
            bytes_h2d: 1,
            bytes_d2h: 2,
            bytes_p2p: 3,
            obs: None,
        })
    }

    #[test]
    fn hit_after_miss() {
        let cache = ShardedCache::new();
        let (a, s1) = cache.get_or_compute(key(4096), || fake(2.0));
        let (b, s2) = cache.get_or_compute(key(4096), || panic!("must not recompute"));
        assert_eq!(s1, Source::Miss);
        assert_eq!(s2, Source::Hit);
        assert_eq!(
            a.unwrap().seconds.to_bits(),
            b.unwrap().seconds.to_bits()
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                coalesced: 0,
                misses: 1
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn abandoned_leader_wakes_waiters_to_retry() {
        let cache = ShardedCache::new();
        let guard = match cache.admit(key(4096)) {
            Admission::Lead(g) => g,
            _ => panic!("fresh key must lead"),
        };
        let flight = match cache.admit(key(4096)) {
            Admission::Wait(f) => f,
            _ => panic!("second admission must wait"),
        };
        drop(guard); // leader dies without filling
        assert!(flight.wait().is_none(), "waiter must see the abandonment");
        // The slot was reclaimed: the next admission leads again.
        match cache.admit(key(4096)) {
            Admission::Lead(g) => {
                g.fill(fake(1.0)).unwrap();
            }
            _ => panic!("abandoned key must be claimable"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_keeps_inflight_claims() {
        let cache = ShardedCache::new();
        cache.get_or_compute(key(4096), || fake(2.0)).0.unwrap();
        let guard = match cache.admit(key(8192)) {
            Admission::Lead(g) => g,
            _ => panic!(),
        };
        cache.clear();
        assert_eq!(cache.len(), 0, "resident entries cleared");
        guard.fill(fake(3.0)).unwrap();
        assert_eq!(cache.len(), 1, "in-flight computation still lands");
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn peek_never_touches_counters() {
        let cache = ShardedCache::new();
        assert!(cache.peek(&key(4096)).is_none());
        cache.get_or_compute(key(4096), || fake(2.0)).0.unwrap();
        assert!(cache.peek(&key(4096)).is_some());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_are_memoized() {
        let cache = ShardedCache::new();
        let (e1, s1) = cache.get_or_compute(key(4096), || Err(RunError::OutOfMemory));
        let (e2, s2) = cache.get_or_compute(key(4096), || panic!("memoized"));
        assert!(matches!(e1, Err(RunError::OutOfMemory)));
        assert!(matches!(e2, Err(RunError::OutOfMemory)));
        assert_eq!((s1, s2), (Source::Miss, Source::Hit));
    }
}
