//! xk-serve: the planner-as-a-service query engine over the simulator.
//!
//! The figure drivers of PRs 1–7 are batch programs: build a sweep, run it,
//! write a JSON artifact. A planner (an auto-tuner, a scheduler picking a
//! library/tile for the next kernel launch) asks the opposite shape of
//! question — many small queries, arriving concurrently, mostly about the
//! same few configurations. This crate serves that workload:
//!
//! * [`ShardedCache`] — a lock-striped memo table over simulated runs with
//!   **single-flight admission**: N concurrent misses of one key cost one
//!   DES run, and every caller observes the same (bit-identical) result.
//!   `xk-bench`'s `RunCache` is now a thin wrapper over this type, so the
//!   figure drivers and the service share one exact tier.
//! * [`ServeEngine`] — the two-tier front end: exact answers through the
//!   cache, and (for [`QueryMode::Approx`] queries) an interpolation fast
//!   tier that fits GFLOP/s-vs-N per configuration family and answers
//!   in-range queries without touching the DES. Approximate answers are
//!   marked [`AnswerSource::Interpolated`] and never enter the exact cache.
//! * [`ServeEngine::query_batch`] — batched miss execution: distinct
//!   misses drain through the cross-seed replica driver
//!   ([`xk_sim::run_replicas`]), and XKBlas-variant misses that share a
//!   task graph simulate from one hoisted [`xk_runtime::SimPrep`].
//! * [`loadgen`] — deterministic zipf traces and percentile helpers for
//!   the `serve_load` harness (`BENCH_serve.json`).

#![warn(missing_docs)]

pub mod engine;
pub mod interp;
pub mod key;
pub mod loadgen;
pub mod shard;

pub use engine::{Answer, AnswerSource, EngineStats, Query, QueryMode, ServeEngine};
pub use interp::{Curve, CurveKey, CurveTable, MAX_BRACKET_RATIO, MIN_FIT_POINTS, SAFETY};
pub use key::QueryKey;
pub use loadgen::{percentile, zipf_trace, Rng64, Zipf};
pub use shard::{
    Admission, CacheStats, Flight, LeadGuard, RunOutcome, ShardedCache, Source, DEFAULT_SHARDS,
};
