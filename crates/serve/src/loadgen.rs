//! Synthetic request traces for load-testing the engine.
//!
//! The `serve_load` harness replays a zipf-over-configs trace: a few hot
//! configurations dominate (the planner steady state — everyone asks about
//! the same production shapes) with a long tail of cold ones. Generation
//! is fully deterministic (SplitMix64 streams, no external RNG crate) so
//! two runs of the harness replay byte-identical traces.

use crate::key::splitmix64;

/// A deterministic SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf sampler over ranks `0..n` with exponent `s`: rank k is drawn with
/// probability proportional to `1/(k+1)^s`. Built once (O(n) table),
/// sampled by binary search over the cumulative weights.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.next_f64();
        self.cumulative.partition_point(|&c| c <= u)
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cumulative.len()
    }
}

/// Draws `requests` config indices from a zipf over `n_configs` ranks.
pub fn zipf_trace(n_configs: usize, requests: usize, exponent: f64, seed: u64) -> Vec<usize> {
    let zipf = Zipf::new(n_configs, exponent);
    let mut rng = Rng64::new(seed);
    (0..requests).map(|_| zipf.sample(&mut rng)).collect()
}

/// The `p`-th percentile (0–100) of an ascending-sorted slice, by
/// nearest-rank on the inclusive index range.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = zipf_trace(64, 1000, 0.9, 42);
        let b = zipf_trace(64, 1000, 0.9, 42);
        assert_eq!(a, b);
        let c = zipf_trace(64, 1000, 0.9, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let trace = zipf_trace(64, 20_000, 1.0, 7);
        let mut counts = vec![0usize; 64];
        for &i in &trace {
            counts[i] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        assert!(counts[0] > trace.len() / 20, "head rank must be hot");
        // Every rank index stays in range and the tail is still reachable.
        assert!(counts.iter().sum::<usize>() == trace.len());
    }

    #[test]
    fn uniform_exponent_spreads() {
        let trace = zipf_trace(8, 16_000, 0.0, 11);
        let mut counts = vec![0usize; 8];
        for &i in &trace {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!(c > 1000, "uniform draw must reach every rank: {counts:?}");
        }
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        // Nearest rank on indices 0..=99: 0.5 * 99 = 49.5 rounds to 50.
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[5.0], 99.0), 5.0);
    }
}
