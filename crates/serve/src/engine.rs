//! The query engine: a long-running planner front end over the simulator.
//!
//! One [`ServeEngine`] per topology answers "what does `(library, routine,
//! N, tile)` achieve on this platform" queries for many concurrent callers:
//!
//! 1. **Exact tier** — the sharded single-flight cache ([`ShardedCache`]):
//!    resident answers return immediately, identical in-flight misses
//!    coalesce onto one DES run.
//! 2. **Interpolation tier** — when the caller passes a tolerance
//!    ([`QueryMode::Approx`]), an in-range query is answered from the
//!    family's GFLOP/s-vs-N fit without touching the DES at all.
//!    Approximate answers are marked [`AnswerSource::Interpolated`] and
//!    never enter the exact cache.
//! 3. **Batched miss execution** — [`ServeEngine::query_batch`] drains
//!    distinct misses into the cross-seed replica driver
//!    ([`xk_sim::run_replicas`]); XKBlas-variant misses that share a task
//!    graph are simulated from one hoisted [`xk_runtime::SimPrep`]
//!    (see [`xk_baselines::run_prepped`]) instead of re-preparing per
//!    query.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xk_baselines::{
    build_run_graph, run, run_prepped, Library, RunError, RunParams, RunResult, XkVariant,
};
use xk_topo::FabricSpec;

use crate::interp::CurveTable;
use crate::key::QueryKey;
use crate::shard::{Admission, Flight, LeadGuard, RunOutcome, ShardedCache, Source};

/// How exact the caller needs the answer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryMode {
    /// Full DES fidelity: cache hit, coalesced wait, or a real simulation.
    Exact,
    /// The answer may come from the interpolation tier when its estimated
    /// relative error is within `rel_err`; falls back to exact otherwise.
    Approx {
        /// Largest acceptable relative error of the returned throughput.
        rel_err: f64,
    },
}

/// One planner query against the engine's topology.
#[derive(Clone, Copy, Debug)]
pub struct Query {
    /// Library policy model.
    pub library: Library,
    /// Routine, dimension, tile, methodology.
    pub params: RunParams,
    /// Exactness contract.
    pub mode: QueryMode,
}

impl Query {
    /// An [`QueryMode::Exact`] query.
    pub fn exact(library: Library, params: RunParams) -> Self {
        Query {
            library,
            params,
            mode: QueryMode::Exact,
        }
    }

    /// An [`QueryMode::Approx`] query with relative tolerance `rel_err`.
    pub fn approx(library: Library, params: RunParams, rel_err: f64) -> Self {
        Query {
            library,
            params,
            mode: QueryMode::Approx { rel_err },
        }
    }
}

/// Where an answer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// Resident in the exact cache.
    Hit,
    /// Coalesced onto another caller's in-flight simulation.
    Coalesced,
    /// This query led a DES run.
    Miss,
    /// Served by the interpolation fast tier (approximate, marked).
    Interpolated,
}

impl From<Source> for AnswerSource {
    fn from(s: Source) -> Self {
        match s {
            Source::Hit => AnswerSource::Hit,
            Source::Coalesced => AnswerSource::Coalesced,
            Source::Miss => AnswerSource::Miss,
        }
    }
}

/// The engine's reply to one query.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The configuration this answers.
    pub key: QueryKey,
    /// Predicted/observed end-to-end seconds.
    pub seconds: f64,
    /// Predicted/observed TFlop/s.
    pub tflops: f64,
    /// How the answer was produced. [`AnswerSource::Interpolated`] answers
    /// are approximate within the query's tolerance contract.
    pub source: AnswerSource,
    /// The full exact run (trace, byte counters, observability) — `None`
    /// for interpolated answers, which never touch the DES.
    pub exact: Option<RunResult>,
}

/// Monotonic engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Exact-cache hits.
    pub hits: u64,
    /// Lookups coalesced onto an in-flight simulation.
    pub coalesced: u64,
    /// Simulations led.
    pub misses: u64,
    /// Queries answered by the interpolation tier.
    pub interpolated: u64,
}

/// A sharded, single-flight, two-tier query engine over one topology.
#[derive(Debug)]
pub struct ServeEngine {
    topo: FabricSpec,
    cache: ShardedCache,
    curves: CurveTable,
    interpolated: AtomicU64,
}

fn params_of(key: &QueryKey) -> RunParams {
    RunParams {
        routine: key.routine,
        n: key.n,
        tile: key.tile,
        data_on_device: key.data_on_device,
    }
}

fn answer_from_exact(key: QueryKey, result: RunResult, source: Source) -> Answer {
    Answer {
        key,
        seconds: result.seconds,
        tflops: result.tflops,
        source: source.into(),
        exact: Some(result),
    }
}

impl ServeEngine {
    /// A fresh engine on `topo`.
    pub fn new(topo: FabricSpec) -> Self {
        ServeEngine {
            topo,
            cache: ShardedCache::new(),
            curves: CurveTable::new(),
            interpolated: AtomicU64::new(0),
        }
    }

    /// The engine's platform.
    pub fn topology(&self) -> &FabricSpec {
        &self.topo
    }

    /// The exact-tier cache (diagnostics: shard spread, residency).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Number of configuration families with at least one interpolation
    /// observation.
    pub fn curves_tracked(&self) -> usize {
        self.curves.families()
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let c = self.cache.stats();
        EngineStats {
            hits: c.hits,
            coalesced: c.coalesced,
            misses: c.misses,
            interpolated: self.interpolated.load(Ordering::Relaxed),
        }
    }

    /// Answers one query.
    pub fn query(&self, q: Query) -> Result<Answer, RunError> {
        let key = QueryKey::new(q.library, &self.topo, &q.params);
        if let QueryMode::Approx { rel_err } = q.mode {
            if let Some(answer) = self.try_fast_tier(&key, rel_err) {
                return Ok(answer);
            }
        }
        let (outcome, source) = self.exact_with_curve(key);
        outcome.map(|r| answer_from_exact(key, r, source))
    }

    /// The approx fast path: a resident exact entry (better than any fit),
    /// else the family's curve fit when it meets the tolerance.
    fn try_fast_tier(&self, key: &QueryKey, rel_err: f64) -> Option<Answer> {
        match self.cache.peek(key) {
            Some(Ok(result)) => {
                self.cache.record(Source::Hit);
                return Some(answer_from_exact(*key, result, Source::Hit));
            }
            // A memoized error: let the exact path return it.
            Some(Err(_)) => return None,
            None => {}
        }
        let gflops = self.curves.predict_within(key, rel_err)?;
        self.interpolated.fetch_add(1, Ordering::Relaxed);
        let flops = key.routine.flops_square(key.n as u64);
        let seconds = flops / (gflops * 1e9);
        Some(Answer {
            key: *key,
            seconds,
            tflops: gflops / 1000.0,
            source: AnswerSource::Interpolated,
            exact: None,
        })
    }

    /// Exact lookup through the single-flight cache; a led simulation
    /// feeds the family's interpolation curve.
    fn exact_with_curve(&self, key: QueryKey) -> (RunOutcome, Source) {
        let params = params_of(&key);
        let (outcome, source) = self
            .cache
            .get_or_compute(key, || run(key.library, &self.topo, &params));
        if source == Source::Miss {
            if let Ok(r) = &outcome {
                self.curves.observe(&key, r.tflops * 1000.0);
            }
        }
        (outcome, source)
    }

    /// Answers a whole batch, draining cache misses into the replica
    /// driver: distinct misses simulate concurrently over `threads`
    /// workers (0 = all cores), and XKBlas-variant misses sharing a task
    /// graph are simulated from one hoisted prep. Answers land in query
    /// order and are identical to issuing each query alone.
    pub fn query_batch(
        &self,
        queries: &[Query],
        threads: usize,
    ) -> Vec<Result<Answer, RunError>> {
        let mut answers: Vec<Option<Result<Answer, RunError>>> = vec![None; queries.len()];

        // Fast tiers inline: interpolation and resident entries.
        let mut unresolved: Vec<(usize, QueryKey)> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let key = QueryKey::new(q.library, &self.topo, &q.params);
            if let QueryMode::Approx { rel_err } = q.mode {
                if let Some(answer) = self.try_fast_tier(&key, rel_err) {
                    answers[i] = Some(Ok(answer));
                    continue;
                }
            }
            unresolved.push((i, key));
        }

        // Admit each distinct unresolved key once.
        let mut key_queries: HashMap<QueryKey, Vec<usize>> = HashMap::new();
        let mut order: Vec<QueryKey> = Vec::new();
        for (i, key) in &unresolved {
            let entry = key_queries.entry(*key).or_default();
            if entry.is_empty() {
                order.push(*key);
            }
            entry.push(*i);
        }
        enum Unit<'c> {
            Solo(QueryKey, LeadGuard<'c>),
            Group(Vec<(QueryKey, LeadGuard<'c>)>),
            WaitFor(QueryKey, Arc<Flight>),
        }
        let mut resolved: Vec<(QueryKey, RunOutcome, Source)> = Vec::new();
        let mut leads: Vec<(QueryKey, LeadGuard<'_>)> = Vec::new();
        let mut waits: Vec<(QueryKey, Arc<Flight>)> = Vec::new();
        for key in order {
            match self.cache.admit(key) {
                Admission::Hit(outcome) => resolved.push((key, outcome, Source::Hit)),
                Admission::Wait(flight) => waits.push((key, flight)),
                Admission::Lead(guard) => leads.push((key, guard)),
            }
        }

        // Group XKBlas-variant leads that share a task graph: same
        // (routine, n, tile, methodology), different heuristics.
        let mut groups: HashMap<(u8, usize, usize, bool), Vec<(QueryKey, LeadGuard<'_>)>> =
            HashMap::new();
        let mut solos: Vec<(QueryKey, LeadGuard<'_>)> = Vec::new();
        for (key, guard) in leads {
            if matches!(key.library, Library::XkBlas(_)) {
                groups
                    .entry((key.routine as u8, key.n, key.tile, key.data_on_device))
                    .or_default()
                    .push((key, guard));
            } else {
                solos.push((key, guard));
            }
        }
        let mut units: Vec<Unit<'_>> = Vec::new();
        for (key, flight) in waits {
            units.push(Unit::WaitFor(key, flight));
        }
        for (key, guard) in solos {
            units.push(Unit::Solo(key, guard));
        }
        for (_, members) in groups {
            if members.len() == 1 {
                let (key, guard) = members.into_iter().next().unwrap();
                units.push(Unit::Solo(key, guard));
            } else {
                units.push(Unit::Group(members));
            }
        }

        // Drain the misses through the replica driver.
        let slots: Vec<Mutex<Option<Unit<'_>>>> =
            units.into_iter().map(|u| Mutex::new(Some(u))).collect();
        let computed: Vec<Vec<(QueryKey, RunOutcome, Source)>> =
            xk_sim::run_replicas(slots.len(), threads, |i| {
                let unit = slots[i].lock().unwrap().take().expect("unit taken once");
                match unit {
                    Unit::Solo(key, guard) => {
                        let params = params_of(&key);
                        let outcome = guard.fill(run(key.library, &self.topo, &params));
                        vec![(key, outcome, Source::Miss)]
                    }
                    Unit::Group(members) => {
                        let params = params_of(&members[0].0);
                        let base = XkVariant::Full.runtime_config();
                        let graph = build_run_graph(&self.topo, &params, &base, false);
                        let prep = xk_runtime::SimPrep::new(&graph);
                        members
                            .into_iter()
                            .map(|(key, guard)| {
                                let Library::XkBlas(variant) = key.library else {
                                    unreachable!("groups hold only XKBlas variants");
                                };
                                let result = run_prepped(
                                    &self.topo,
                                    &params_of(&key),
                                    variant.runtime_config(),
                                    &graph,
                                    &prep,
                                );
                                (key, guard.fill(Ok(result)), Source::Miss)
                            })
                            .collect()
                    }
                    Unit::WaitFor(key, flight) => {
                        let (outcome, source) = match flight.wait() {
                            Some(outcome) => (outcome, Source::Coalesced),
                            // The outside leader abandoned: re-admit (the
                            // distribute loop below does the counting and
                            // curve feeding, so don't go through the
                            // self-recording exact path).
                            None => loop {
                                match self.cache.admit(key) {
                                    Admission::Hit(o) => break (o, Source::Hit),
                                    Admission::Wait(f) => {
                                        if let Some(o) = f.wait() {
                                            break (o, Source::Coalesced);
                                        }
                                    }
                                    Admission::Lead(guard) => {
                                        let params = params_of(&key);
                                        let o = guard
                                            .fill(run(key.library, &self.topo, &params));
                                        break (o, Source::Miss);
                                    }
                                }
                            },
                        };
                        vec![(key, outcome, source)]
                    }
                }
            });
        resolved.extend(computed.into_iter().flatten());

        // Feed curves and distribute answers in query order. The first
        // query of a led key is the miss; its batch duplicates coalesced
        // onto the same run.
        for (key, outcome, source) in resolved {
            if source == Source::Miss {
                if let Ok(r) = &outcome {
                    self.curves.observe(&key, r.tflops * 1000.0);
                }
            }
            let idxs = &key_queries[&key];
            for (dup, &i) in idxs.iter().enumerate() {
                let per_query = if dup == 0 {
                    source
                } else {
                    match source {
                        Source::Hit => Source::Hit,
                        _ => Source::Coalesced,
                    }
                };
                self.cache.record(per_query);
                answers[i] = Some(
                    outcome
                        .clone()
                        .map(|r| answer_from_exact(key, r, per_query)),
                );
            }
        }

        answers
            .into_iter()
            .map(|a| a.expect("every query resolved"))
            .collect()
    }
}
