//! The interpolation fast tier: GFLOP/s-vs-N curve fits per configuration.
//!
//! A planner query with a tolerance (`Approx { rel_err }`) does not need
//! the DES when the cache already holds exact runs of the same
//! `(library, routine, tile, data-on-device, topology)` family bracketing
//! the requested N: achieved throughput varies smoothly in N at fixed tile,
//! so a piecewise-linear fit over the exact points answers in nanoseconds
//! (the two-tier shape of the ML-driven BLAS-3 runtime work: a cheap
//! predictor in front of the expensive oracle).
//!
//! The tier is deliberately conservative — it only serves when its own
//! leave-one-out error estimate, scaled by a safety factor, meets the
//! caller's tolerance; otherwise the query falls back to the exact path.
//! Approximate answers are marked [`crate::Source`]-less (see
//! [`crate::Answer::source`] = `Interpolated`) and never enter the exact
//! cache.

use std::collections::HashMap;

use xk_baselines::Library;
use xk_kernels::Routine;

use crate::key::QueryKey;

/// The curve family: everything of [`QueryKey`] except N.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CurveKey {
    /// Library policy model.
    pub library: Library,
    /// BLAS-3 routine.
    pub routine: Routine,
    /// Tile size the curve is fitted at.
    pub tile: usize,
    /// Data-on-device methodology.
    pub data_on_device: bool,
    /// [`xk_topo::FabricSpec::fingerprint`] of the platform.
    pub topo_fingerprint: u64,
}

impl CurveKey {
    /// The curve family of one exact-run key.
    pub fn of(key: &QueryKey) -> Self {
        CurveKey {
            library: key.library,
            routine: key.routine,
            tile: key.tile,
            data_on_device: key.data_on_device,
            topo_fingerprint: key.topo_fingerprint,
        }
    }
}

/// Fewest exact points before a curve may serve approximations.
pub const MIN_FIT_POINTS: usize = 4;

/// Widest bracketing gap the fit will interpolate across: the two exact
/// points around the query must satisfy `hi_n <= MAX_BRACKET_RATIO * lo_n`
/// (sparser data falls back to the exact tier).
pub const MAX_BRACKET_RATIO: f64 = 2.0;

/// The fit serves only when `SAFETY * leave-one-out error <= tolerance`:
/// the held-out error is an estimate at the sampled points, and the safety
/// margin covers the unseen ones.
pub const SAFETY: f64 = 2.0;

/// A GFLOP/s-vs-N curve built from exact DES runs of one [`CurveKey`].
#[derive(Clone, Debug, Default)]
pub struct Curve {
    /// `(n, gflops)` sorted ascending by n, unique n.
    pts: Vec<(f64, f64)>,
}

impl Curve {
    /// An empty curve.
    pub fn new() -> Self {
        Curve::default()
    }

    /// Records one exact observation (replacing any previous observation
    /// at the same N — exact reruns are deterministic, so this is a no-op
    /// for an existing point).
    pub fn insert(&mut self, n: f64, gflops: f64) {
        match self.pts.binary_search_by(|p| p.0.total_cmp(&n)) {
            Ok(i) => self.pts[i].1 = gflops,
            Err(i) => self.pts.insert(i, (n, gflops)),
        }
    }

    /// Number of exact observations.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True when no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Piecewise-linear prediction at `n`; `None` outside the observed
    /// range or when fewer than two points exist.
    pub fn predict(&self, n: f64) -> Option<f64> {
        let (lo, hi) = self.bracket(n)?;
        let (x0, y0) = self.pts[lo];
        let (x1, y1) = self.pts[hi];
        if lo == hi || x1 == x0 {
            return Some(y0);
        }
        Some(y0 + (y1 - y0) * (n - x0) / (x1 - x0))
    }

    /// Indices of the two observations bracketing `n` (equal on an exact
    /// sample point); `None` out of range.
    fn bracket(&self, n: f64) -> Option<(usize, usize)> {
        if self.pts.is_empty() || n < self.pts[0].0 || n > self.pts[self.pts.len() - 1].0 {
            return None;
        }
        match self.pts.binary_search_by(|p| p.0.total_cmp(&n)) {
            Ok(i) => Some((i, i)),
            Err(i) => Some((i - 1, i)),
        }
    }

    /// The largest relative error of predicting each interior observation
    /// from its two neighbours (leave-one-out): the curve's own estimate
    /// of how wrong linear interpolation is at this sampling density.
    /// Infinity with fewer than three points.
    pub fn max_loo_rel_err(&self) -> f64 {
        if self.pts.len() < 3 {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for i in 1..self.pts.len() - 1 {
            let (x0, y0) = self.pts[i - 1];
            let (x1, y1) = self.pts[i + 1];
            let (x, y) = self.pts[i];
            let pred = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            if y != 0.0 {
                worst = worst.max(((pred - y) / y).abs());
            }
        }
        worst
    }

    /// Whether the fit may answer at `n` within relative tolerance `tol`:
    /// enough points, `n` in range, a tight enough bracket, and the
    /// safety-scaled leave-one-out error within `tol`.
    pub fn can_serve(&self, n: f64, tol: f64) -> bool {
        if self.pts.len() < MIN_FIT_POINTS || !tol.is_finite() || tol <= 0.0 {
            return false;
        }
        let Some((lo, hi)) = self.bracket(n) else {
            return false;
        };
        if lo != hi && self.pts[hi].0 > MAX_BRACKET_RATIO * self.pts[lo].0 {
            return false;
        }
        SAFETY * self.max_loo_rel_err() <= tol
    }
}

/// The per-family curve table (one fit per [`CurveKey`]).
#[derive(Debug, Default)]
pub struct CurveTable {
    curves: std::sync::Mutex<HashMap<CurveKey, Curve>>,
}

impl CurveTable {
    /// An empty table.
    pub fn new() -> Self {
        CurveTable::default()
    }

    /// Feeds one exact observation into its family's curve.
    pub fn observe(&self, key: &QueryKey, gflops: f64) {
        self.curves
            .lock()
            .unwrap()
            .entry(CurveKey::of(key))
            .or_default()
            .insert(key.n as f64, gflops);
    }

    /// Predicts GFLOP/s at `key.n` when the family's fit can serve within
    /// `tol`; `None` (caller falls back to exact) otherwise.
    pub fn predict_within(&self, key: &QueryKey, tol: f64) -> Option<f64> {
        let curves = self.curves.lock().unwrap();
        let curve = curves.get(&CurveKey::of(key))?;
        if !curve.can_serve(key.n as f64, tol) {
            return None;
        }
        curve.predict(key.n as f64)
    }

    /// Number of families with at least one observation.
    pub fn families(&self) -> usize {
        self.curves.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearish() -> Curve {
        let mut c = Curve::new();
        for n in [2048.0, 3072.0, 4096.0, 5120.0, 6144.0] {
            c.insert(n, 10.0 + n / 1024.0); // exactly linear in n
        }
        c
    }

    #[test]
    fn linear_data_interpolates_exactly() {
        let c = linearish();
        assert!((c.predict(3584.0).unwrap() - 13.5).abs() < 1e-12);
        assert_eq!(c.max_loo_rel_err(), 0.0);
        assert!(c.can_serve(3584.0, 0.01));
    }

    #[test]
    fn out_of_range_is_refused() {
        let c = linearish();
        assert!(c.predict(1024.0).is_none());
        assert!(c.predict(10000.0).is_none());
        assert!(!c.can_serve(1024.0, 0.5));
        assert!(!c.can_serve(10000.0, 0.5));
    }

    #[test]
    fn sparse_data_is_refused() {
        let mut c = Curve::new();
        c.insert(2048.0, 12.0);
        c.insert(4096.0, 14.0);
        c.insert(8192.0, 16.0); // 3 points < MIN_FIT_POINTS
        assert!(!c.can_serve(3072.0, 0.5));
        c.insert(16384.0, 17.0);
        // Enough points now, but the 8192→16384 bracket is too wide
        // relative (ratio 2.0 is allowed; beyond refused).
        c.insert(40000.0, 17.5);
        assert!(!c.can_serve(20000.0, 0.5), "bracket ratio 2.5 must refuse");
    }

    #[test]
    fn wiggly_data_fails_the_loo_gate() {
        let mut c = Curve::new();
        for (i, n) in [2048.0, 3072.0, 4096.0, 5120.0, 6144.0].iter().enumerate() {
            let wiggle = if i % 2 == 0 { 1.0 } else { -1.0 };
            c.insert(*n, 20.0 + 8.0 * wiggle);
        }
        assert!(c.max_loo_rel_err() > 0.5);
        assert!(!c.can_serve(3584.0, 0.1));
    }

    #[test]
    fn duplicate_n_replaces() {
        let mut c = Curve::new();
        c.insert(2048.0, 10.0);
        c.insert(2048.0, 11.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.predict(2048.0), Some(11.0));
    }
}
