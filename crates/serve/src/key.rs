//! The query key: everything that determines one simulated run.
//!
//! Identical to the memoization key `xk-bench` has used since PR 1 (that
//! crate now re-exports this type as `RunKey`); it lives here so the
//! sharded cache, the figure drivers and the query engine all agree on
//! what "the same configuration" means.

use xk_baselines::{Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_topo::FabricSpec;

/// Everything that determines a simulated run: the cache/query key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QueryKey {
    /// Library policy model.
    pub library: Library,
    /// BLAS-3 routine.
    pub routine: Routine,
    /// Matrix dimension.
    pub n: usize,
    /// Tile size.
    pub tile: usize,
    /// Data-on-device methodology.
    pub data_on_device: bool,
    /// [`FabricSpec::fingerprint`] of the platform.
    pub topo_fingerprint: u64,
}

impl QueryKey {
    /// Builds the key for one run.
    pub fn new(lib: Library, topo: &FabricSpec, params: &RunParams) -> Self {
        QueryKey {
            library: lib,
            routine: params.routine,
            n: params.n,
            tile: params.tile,
            data_on_device: params.data_on_device,
            topo_fingerprint: topo.fingerprint(),
        }
    }

    /// The shard discriminant: topology fingerprint mixed with the
    /// `(library, routine)` pair — and nothing else, so every `(N, tile)`
    /// point of one configuration family lands in the same shard (a sweep
    /// over N walks one lock while sweeps of other families walk others).
    pub fn shard_hash(&self) -> u64 {
        let family = (library_code(self.library) << 3) | self.routine as u64;
        splitmix64(self.topo_fingerprint ^ splitmix64(family))
    }
}

/// A stable small integer per library (including the XKBlas ablations).
fn library_code(lib: Library) -> u64 {
    match lib {
        Library::XkBlas(XkVariant::Full) => 0,
        Library::XkBlas(XkVariant::NoHeuristic) => 1,
        Library::XkBlas(XkVariant::NoHeuristicNoTopo) => 2,
        Library::CublasXt => 3,
        Library::CublasMg => 4,
        Library::Blasx => 5,
        Library::ChameleonTile => 6,
        Library::ChameleonLapack => 7,
        Library::Slate => 8,
        Library::Dplasma => 9,
    }
}

/// SplitMix64 finalizer: a strong, platform-stable 64-bit mixer (the same
/// reference construction `xk-check`'s seeded controllers use).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    fn params(n: usize, tile: usize) -> RunParams {
        RunParams {
            routine: Routine::Gemm,
            n,
            tile,
            data_on_device: false,
        }
    }

    #[test]
    fn same_family_shares_a_shard_hash() {
        let topo = dgx1();
        let a = QueryKey::new(Library::CublasXt, &topo, &params(4096, 1024));
        let b = QueryKey::new(Library::CublasXt, &topo, &params(16384, 4096));
        assert_ne!(a, b);
        assert_eq!(a.shard_hash(), b.shard_hash());
    }

    #[test]
    fn families_get_distinct_hashes() {
        let topo = dgx1();
        let p = params(4096, 1024);
        let mut hashes: Vec<u64> = Library::FIG5
            .iter()
            .map(|&lib| QueryKey::new(lib, &topo, &p).shard_hash())
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), Library::FIG5.len(), "family hash collision");
    }

    #[test]
    fn library_codes_are_unique() {
        let all = [
            Library::XkBlas(XkVariant::Full),
            Library::XkBlas(XkVariant::NoHeuristic),
            Library::XkBlas(XkVariant::NoHeuristicNoTopo),
            Library::CublasXt,
            Library::CublasMg,
            Library::Blasx,
            Library::ChameleonTile,
            Library::ChameleonLapack,
            Library::Slate,
            Library::Dplasma,
        ];
        let mut codes: Vec<u64> = all.iter().map(|&l| library_code(l)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
