//! serve_load: replay a zipf query trace against the planner service.
//!
//! Three replay phases against one engine — `cold` (every configuration
//! simulated at least once), `warm` (the identical trace again, answered
//! from the exact cache) and `approx` (off-grid N values under an
//! `Approx { rel_err }` contract, served by the interpolation tier where
//! its error gate allows) — plus a `batch` phase on a fresh engine that
//! pushes a duplicate-heavy slice of the trace through
//! [`ServeEngine::query_batch`] so in-batch duplicates coalesce onto one
//! simulation each. Per-request latencies (p50/p99), throughput and the
//! hit/coalesce/miss/interpolated counters land in `BENCH_serve.json`.
//!
//! Usage: `serve_load [--quick] [--requests N] [--threads N] [--out PATH]`

use std::collections::HashSet;
use std::time::Instant;

use xk_baselines::{Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_serve::{percentile, zipf_trace, EngineStats, Query, QueryKey, ServeEngine};

/// Exact-grid matrix dimensions (the curve sample points). Large N at a
/// fixed 2048 tile: the GFLOP/s curves are near-linear here, whereas at
/// small tile counts integer-parity effects make them too steppy for any
/// linear fit to pass its own error gate.
const GRID_N: [usize; 6] = [16384, 20480, 24576, 28672, 32768, 36864];
/// Off-grid dimensions for the approximate phase.
const MID_N: [usize; 5] = [18432, 22528, 26624, 30720, 34816];
const TILE: usize = 2048;
const ROUTINES: [Routine; 3] = [Routine::Gemm, Routine::Syrk, Routine::Trsm];
const ZIPF_EXPONENT: f64 = 0.9;
const SEED: u64 = 42;
/// Approx-phase tolerance: loose enough that the smooth families serve
/// from their fits, tight enough that the steppiest (XKBlas-no-heuristic
/// TRSM) is refused by the leave-one-out gate and falls back to exact.
const APPROX_TOL: f64 = 0.30;

fn libraries(quick: bool) -> Vec<Library> {
    if quick {
        vec![Library::XkBlas(XkVariant::Full), Library::CublasXt]
    } else {
        vec![
            Library::XkBlas(XkVariant::Full),
            Library::XkBlas(XkVariant::NoHeuristic),
            Library::CublasXt,
            Library::Slate,
        ]
    }
}

fn configs(quick: bool, dims: &[usize]) -> Vec<(Library, RunParams)> {
    let mut out = Vec::new();
    for &lib in &libraries(quick) {
        for &routine in &ROUTINES {
            if !lib.supports(routine) {
                continue;
            }
            for &n in dims {
                out.push((
                    lib,
                    RunParams {
                        routine,
                        n,
                        tile: TILE,
                        data_on_device: false,
                    },
                ));
            }
        }
    }
    out
}

struct PhaseReport {
    queries: usize,
    seconds: f64,
    p50_us: f64,
    p99_us: f64,
    delta: EngineStats,
}

impl PhaseReport {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.seconds
    }

    fn json(&self) -> String {
        format!(
            "{{\"queries\": {}, \"seconds\": {}, \"queries_per_sec\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"hits\": {}, \"coalesced\": {}, \
             \"misses\": {}, \"interpolated\": {}}}",
            self.queries,
            self.seconds,
            self.qps(),
            self.p50_us,
            self.p99_us,
            self.delta.hits,
            self.delta.coalesced,
            self.delta.misses,
            self.delta.interpolated,
        )
    }
}

fn stats_delta(after: EngineStats, before: EngineStats) -> EngineStats {
    EngineStats {
        hits: after.hits - before.hits,
        coalesced: after.coalesced - before.coalesced,
        misses: after.misses - before.misses,
        interpolated: after.interpolated - before.interpolated,
    }
}

/// Replays `queries` one at a time, timing each request.
fn run_phase(engine: &ServeEngine, queries: &[Query]) -> PhaseReport {
    let before = engine.stats();
    let mut lat_us: Vec<f64> = Vec::with_capacity(queries.len());
    let t0 = Instant::now();
    for &q in queries {
        let tq = Instant::now();
        engine.query(q).expect("trace queries are runnable");
        lat_us.push(tq.elapsed().as_secs_f64() * 1e6);
    }
    let seconds = t0.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    PhaseReport {
        queries: queries.len(),
        seconds,
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        delta: stats_delta(engine.stats(), before),
    }
}

fn main() {
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut threads = 0usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--requests" => {
                requests = Some(args.next().and_then(|v| v.parse().ok()).expect("--requests N"))
            }
            "--threads" => {
                threads = args.next().and_then(|v| v.parse().ok()).expect("--threads N")
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => panic!("unknown argument {other:?} (serve_load [--quick] [--requests N] [--threads N] [--out PATH])"),
        }
    }
    let requests = requests.unwrap_or(if quick { 96 } else { 240 });

    let topo = xk_topo::dgx1();
    let uni = configs(quick, &GRID_N);
    // The trace enumerates the universe once (full coverage: every curve
    // family gets all its grid points) and then draws the zipf tail.
    let mut trace: Vec<usize> = (0..uni.len()).collect();
    trace.extend(zipf_trace(
        uni.len(),
        requests.saturating_sub(uni.len()),
        ZIPF_EXPONENT,
        SEED,
    ));
    let exact_trace: Vec<Query> = trace
        .iter()
        .map(|&i| Query::exact(uni[i].0, uni[i].1))
        .collect();

    eprintln!(
        "serve_load: {} configs, {} requests, zipf s={ZIPF_EXPONENT}",
        uni.len(),
        exact_trace.len()
    );

    let engine = ServeEngine::new(topo.clone());
    eprintln!("cold replay (every miss is a DES run) ...");
    let cold = run_phase(&engine, &exact_trace);
    eprintln!("warm replay (same trace, resident) ...");
    let warm = run_phase(&engine, &exact_trace);

    eprintln!("approx replay (off-grid N, tol {APPROX_TOL}) ...");
    let approx_queries: Vec<Query> = configs(quick, &MID_N)
        .into_iter()
        .map(|(lib, params)| Query::approx(lib, params, APPROX_TOL))
        .collect();
    let approx = run_phase(&engine, &approx_queries);

    // Batch phase: a fresh engine, a duplicate-heavy trace slice, one
    // query_batch call. In-batch duplicates coalesce; distinct keys
    // simulate concurrently over the replica driver.
    let batch_len = exact_trace.len().min(4 * uni.len());
    let batch_queries = &exact_trace[..batch_len];
    let distinct: HashSet<QueryKey> = batch_queries
        .iter()
        .map(|q| QueryKey::new(q.library, &topo, &q.params))
        .collect();
    let batch_engine = ServeEngine::new(topo.clone());
    eprintln!(
        "batch replay ({batch_len} queries, {} distinct, threads={threads}) ...",
        distinct.len()
    );
    let t0 = Instant::now();
    let batch_answers = batch_engine.query_batch(batch_queries, threads);
    let batch_secs = t0.elapsed().as_secs_f64();
    let bstats = batch_engine.stats();

    // Sanity: the counters account for every query, each distinct key
    // simulated exactly once, and the batch answers are bit-identical to
    // the sequential engine's.
    assert_eq!(
        bstats.hits + bstats.coalesced + bstats.misses,
        batch_len as u64,
        "batch counters must account for every query"
    );
    assert_eq!(
        bstats.misses as usize,
        distinct.len(),
        "each distinct key must simulate exactly once"
    );
    for (q, a) in batch_queries.iter().zip(&batch_answers) {
        let a = a.as_ref().expect("batch query runnable");
        let r = engine.query(*q).expect("reference query runnable");
        assert_eq!(
            a.seconds.to_bits(),
            r.seconds.to_bits(),
            "batch answer diverged from the sequential engine"
        );
    }

    let speedup = warm.qps() / cold.qps();
    assert!(
        speedup >= 10.0,
        "warm replay must be >= 10x cold throughput (got {speedup:.1}x)"
    );

    let json = format!(
        "{{\n  \"harness\": \"serve_load\",\n  \"quick\": {quick},\n  \
         \"universe\": {},\n  \"requests\": {},\n  \"tile\": {TILE},\n  \
         \"zipf_exponent\": {ZIPF_EXPONENT},\n  \"seed\": {SEED},\n  \
         \"threads\": {threads},\n  \"shards\": {},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"approx\": {},\n  \
         \"batch\": {{\"queries\": {batch_len}, \"distinct\": {}, \
         \"seconds\": {batch_secs}, \"queries_per_sec\": {}, \
         \"hits\": {}, \"coalesced\": {}, \"misses\": {}}},\n  \
         \"warm_speedup\": {speedup},\n  \"curve_families\": {},\n  \
         \"approx_tolerance\": {APPROX_TOL}\n}}\n",
        uni.len(),
        exact_trace.len(),
        engine.cache().n_shards(),
        cold.json(),
        warm.json(),
        approx.json(),
        distinct.len(),
        batch_len as f64 / batch_secs,
        bstats.hits,
        bstats.coalesced,
        bstats.misses,
        engine.curves_tracked(),
    );
    std::fs::write(&out, json.as_bytes()).expect("snapshot written");
    print!("{json}");
    eprintln!(
        "wrote {out} (cold {:.0} q/s, warm {:.0} q/s = {speedup:.0}x, {} interpolated)",
        cold.qps(),
        warm.qps(),
        approx.delta.interpolated
    );
}
