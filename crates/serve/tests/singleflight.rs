//! Single-flight admission, shard spread, and batched query execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use xk_baselines::{run, Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_serve::{Query, QueryKey, ServeEngine, ShardedCache, Source};
use xk_topo::{builders, dgx1};

fn gemm_params(n: usize, tile: usize) -> RunParams {
    RunParams {
        routine: Routine::Gemm,
        n,
        tile,
        data_on_device: false,
    }
}

/// N threads race on one cold key: the probe observes exactly one DES
/// execution and every caller gets the leader's bit-identical result.
#[test]
fn thundering_herd_runs_one_simulation() {
    const THREADS: usize = 8;
    let topo = dgx1();
    let cache = ShardedCache::new();
    let params = gemm_params(8192, 2048);
    let key = QueryKey::new(Library::CublasXt, &topo, &params);
    let executions = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);

    let outcomes: Vec<(u64, Source)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    let (outcome, source) = cache.get_or_compute(key, || {
                        executions.fetch_add(1, Ordering::SeqCst);
                        run(Library::CublasXt, &topo, &params)
                    });
                    (outcome.unwrap().seconds.to_bits(), source)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "single flight: the herd must cost exactly one simulation"
    );
    let reference = outcomes[0].0;
    assert!(
        outcomes.iter().all(|&(bits, _)| bits == reference),
        "every caller must observe the leader's bit-identical result"
    );
    assert_eq!(
        outcomes.iter().filter(|&&(_, s)| s == Source::Miss).count(),
        1,
        "exactly one caller led"
    );
    let st = cache.stats();
    assert_eq!(st.misses, 1);
    assert_eq!(st.hits + st.coalesced, THREADS as u64 - 1);
    assert_eq!(cache.len(), 1);
}

/// Concurrent writers of distinct keys land every entry correctly.
#[test]
fn concurrent_distinct_keys_all_land() {
    let topo = dgx1();
    let cache = ShardedCache::new();
    let dims = [4096usize, 6144, 8192, 10240, 12288, 16384];
    std::thread::scope(|s| {
        for &n in &dims {
            let cache = &cache;
            let topo = &topo;
            s.spawn(move || {
                let params = gemm_params(n, 2048);
                let key = QueryKey::new(Library::CublasXt, topo, &params);
                cache
                    .get_or_compute(key, || run(Library::CublasXt, topo, &params))
                    .0
                    .unwrap();
            });
        }
    });
    assert_eq!(cache.len(), dims.len());
    assert_eq!(cache.stats().misses, dims.len() as u64);
    // Every entry is individually retrievable and matches a fresh run.
    for &n in &dims {
        let params = gemm_params(n, 2048);
        let key = QueryKey::new(Library::CublasXt, &topo, &params);
        let cached = cache.peek(&key).expect("resident").unwrap();
        let fresh = run(Library::CublasXt, &topo, &params).unwrap();
        assert_eq!(cached.seconds.to_bits(), fresh.seconds.to_bits());
    }
}

/// Distinct `(topology, library, routine)` families spread over many
/// shards, while every `(N, tile)` point of one family shares its shard.
#[test]
fn families_spread_over_shards() {
    let topos = [
        dgx1(),
        builders::pcie_only(8),
        builders::nvlink_all_to_all(8),
        builders::summit_node(),
        builders::nvlink_ring(8),
    ];
    let cache = ShardedCache::new();
    let mut family_shards = std::collections::HashSet::new();
    let mut families = 0usize;
    for topo in &topos {
        for lib in Library::FIG5 {
            for routine in [Routine::Gemm, Routine::Syrk, Routine::Trsm] {
                if !lib.supports(routine) {
                    continue;
                }
                families += 1;
                let mut shard = None;
                for n in [4096usize, 8192, 16384] {
                    for tile in [1024usize, 2048] {
                        let key = QueryKey::new(
                            lib,
                            topo,
                            &RunParams {
                                routine,
                                n,
                                tile,
                                data_on_device: false,
                            },
                        );
                        let idx = cache.shard_index(&key);
                        assert_eq!(
                            *shard.get_or_insert(idx),
                            idx,
                            "one family must stay on one shard"
                        );
                    }
                }
                family_shards.insert((topo.fingerprint(), shard.unwrap()));
            }
        }
    }
    // With 64 stripes and well-mixed hashes the families must not pile up
    // on a few locks: require at least half the stripes in use.
    let distinct: std::collections::HashSet<usize> =
        family_shards.iter().map(|&(_, s)| s).collect();
    assert!(families > 64, "corpus covers more families than stripes");
    assert!(
        distinct.len() >= cache.n_shards() / 2,
        "families landed on only {} of {} shards",
        distinct.len(),
        cache.n_shards()
    );
}

/// `query_batch` returns bit-identical answers to issuing each query
/// alone, in query order.
#[test]
fn batch_matches_sequential_bitwise() {
    let topo = dgx1();
    let libs = [
        Library::XkBlas(XkVariant::Full),
        Library::XkBlas(XkVariant::NoHeuristic),
        Library::XkBlas(XkVariant::NoHeuristicNoTopo),
        Library::CublasXt,
        Library::Slate,
    ];
    let queries: Vec<Query> = libs
        .iter()
        .flat_map(|&lib| {
            [8192usize, 12288].map(|n| Query::exact(lib, gemm_params(n, 2048)))
        })
        .collect();

    let batch_engine = ServeEngine::new(topo.clone());
    let batched = batch_engine.query_batch(&queries, 0);

    let seq_engine = ServeEngine::new(topo);
    for (q, b) in queries.iter().zip(&batched) {
        let b = b.as_ref().expect("batch query runnable");
        let s = seq_engine.query(*q).expect("sequential query runnable");
        assert_eq!(b.key, s.key);
        assert_eq!(b.seconds.to_bits(), s.seconds.to_bits());
        assert_eq!(b.tflops.to_bits(), s.tflops.to_bits());
        let (be, se) = (b.exact.as_ref().unwrap(), s.exact.as_ref().unwrap());
        assert_eq!(be.bytes_h2d, se.bytes_h2d);
        assert_eq!(be.bytes_d2h, se.bytes_d2h);
        assert_eq!(be.bytes_p2p, se.bytes_p2p);
        assert_eq!(be.trace.len(), se.trace.len());
    }
    // The XKBlas variants of each (n, tile) shared one graph + prep.
    assert_eq!(batch_engine.stats().misses, queries.len() as u64);
}

/// A batch of 16 copies of one cold key costs one simulation: 1 miss and
/// 15 coalesced answers, all bit-identical.
#[test]
fn batch_coalesces_duplicate_keys() {
    let topo = dgx1();
    let engine = ServeEngine::new(topo);
    let queries = vec![Query::exact(Library::CublasXt, gemm_params(8192, 2048)); 16];
    let answers = engine.query_batch(&queries, 0);

    let st = engine.stats();
    assert_eq!(st.misses, 1, "one simulation for the whole batch");
    assert_eq!(st.coalesced, 15);
    assert_eq!(st.hits, 0);
    assert_eq!(engine.cache().len(), 1);

    let bits: Vec<u64> = answers
        .iter()
        .map(|a| a.as_ref().unwrap().seconds.to_bits())
        .collect();
    assert!(bits.windows(2).all(|w| w[0] == w[1]));
}

/// Unsupported routines surface the same memoized error through the batch
/// path as through single queries.
#[test]
fn batch_propagates_errors() {
    let topo = dgx1();
    let engine = ServeEngine::new(topo);
    let mut params = gemm_params(8192, 2048);
    params.routine = Routine::Syrk; // DPLASMA is GEMM-only
    let queries = vec![
        Query::exact(Library::Dplasma, params),
        Query::exact(Library::CublasXt, params),
        Query::exact(Library::Dplasma, params),
    ];
    let answers = engine.query_batch(&queries, 0);
    assert!(answers[0].is_err());
    assert!(answers[1].is_ok());
    assert!(answers[2].is_err());
    let st = engine.stats();
    assert_eq!(st.misses, 2, "error led once, success led once");
    assert_eq!(st.coalesced, 1, "duplicate error coalesced");
}
