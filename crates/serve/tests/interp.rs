//! The interpolation fast tier against real DES curves.

use xk_baselines::{run, Library, RunParams, XkVariant};
use xk_kernels::Routine;
use xk_serve::{AnswerSource, Query, ServeEngine};
use xk_topo::dgx1;

/// Large-N grid at a fixed 2048 tile: near-linear GFLOP/s-vs-N region.
const GRID_N: [usize; 6] = [16384, 20480, 24576, 28672, 32768, 36864];
const MID_N: [usize; 5] = [18432, 22528, 26624, 30720, 34816];
const TILE: usize = 2048;
const ROUTINES: [Routine; 3] = [Routine::Gemm, Routine::Syrk, Routine::Trsm];
const LIBS: [Library; 4] = [
    Library::XkBlas(XkVariant::Full),
    Library::XkBlas(XkVariant::NoHeuristic),
    Library::CublasXt,
    Library::Slate,
];

fn params(routine: Routine, n: usize) -> RunParams {
    RunParams {
        routine,
        n,
        tile: TILE,
        data_on_device: false,
    }
}

/// Seeds every `(library, routine)` family's curve with the exact grid.
fn seeded_engine() -> ServeEngine {
    let engine = ServeEngine::new(dgx1());
    for lib in LIBS {
        for routine in ROUTINES {
            for n in GRID_N {
                engine
                    .query(Query::exact(lib, params(routine, n)))
                    .expect("grid point runs");
            }
        }
    }
    engine
}

/// Across every library/routine family: in-range approx queries that the
/// fit serves are within the requested tolerance of the exact DES result,
/// and approximate answers never enter the exact cache.
#[test]
fn approx_within_tolerance_across_grid() {
    const TOL: f64 = 0.5;
    let engine = seeded_engine();
    let topo = dgx1();
    let resident_before = engine.cache().len();

    let mut interpolated = 0usize;
    let mut fallbacks = 0usize;
    for lib in LIBS {
        for routine in ROUTINES {
            for n in MID_N {
                let p = params(routine, n);
                let a = engine
                    .query(Query::approx(lib, p, TOL))
                    .expect("approx query runs");
                if a.source == AnswerSource::Interpolated {
                    interpolated += 1;
                    assert!(a.exact.is_none(), "interpolated answers carry no trace");
                    // Reference exact run outside the engine so the cache
                    // stays untouched by the comparison.
                    let exact = run(lib, &topo, &p).expect("reference runs");
                    let rel = ((a.tflops - exact.tflops) / exact.tflops).abs();
                    assert!(
                        rel <= TOL,
                        "{lib:?}/{routine:?} n={n}: fit error {rel:.3} > tol {TOL}"
                    );
                    let sec_rel = ((a.seconds - exact.seconds) / exact.seconds).abs();
                    assert!(sec_rel <= TOL, "seconds estimate off by {sec_rel:.3}");
                } else {
                    fallbacks += 1;
                }
            }
        }
    }

    assert!(
        interpolated >= LIBS.len() * ROUTINES.len(),
        "the fast tier must serve in-range queries (served {interpolated})"
    );
    // Every fallback was an exact DES run that entered the cache; no
    // interpolated answer did.
    assert_eq!(
        engine.cache().len(),
        resident_before + fallbacks,
        "approx answers must never enter the exact cache"
    );
    assert_eq!(engine.stats().interpolated, interpolated as u64);
}

/// Out-of-range queries fall back to the exact tier even with a huge
/// tolerance.
#[test]
fn out_of_range_falls_back_to_exact() {
    let engine = ServeEngine::new(dgx1());
    let lib = Library::CublasXt;
    for n in GRID_N {
        engine
            .query(Query::exact(lib, params(Routine::Gemm, n)))
            .unwrap();
    }
    for n in [8192usize, 45056] {
        let a = engine
            .query(Query::approx(lib, params(Routine::Gemm, n), 10.0))
            .expect("fallback runs");
        assert_eq!(
            a.source,
            AnswerSource::Miss,
            "n={n} is outside the fitted range and must simulate"
        );
        assert!(a.exact.is_some());
    }
}

/// Too few exact observations: the fit refuses and the query simulates.
#[test]
fn sparse_data_falls_back_to_exact() {
    let engine = ServeEngine::new(dgx1());
    let lib = Library::CublasXt;
    for n in [GRID_N[0], GRID_N[5]] {
        engine
            .query(Query::exact(lib, params(Routine::Gemm, n)))
            .unwrap();
    }
    let a = engine
        .query(Query::approx(lib, params(Routine::Gemm, MID_N[2]), 10.0))
        .unwrap();
    assert_eq!(
        a.source,
        AnswerSource::Miss,
        "two points are below MIN_FIT_POINTS; the tier must refuse"
    );
}

/// An interpolated answer leaves no cache entry: a later exact query of
/// the same configuration is a genuine miss, and an approx re-query then
/// prefers the now-resident exact result over the fit.
#[test]
fn approx_then_exact_then_hit() {
    let lib = Library::XkBlas(XkVariant::Full);
    let engine = ServeEngine::new(dgx1());
    for n in GRID_N {
        engine.query(Query::exact(lib, params(Routine::Syrk, n))).unwrap();
    }
    let p = params(Routine::Syrk, MID_N[1]);

    let approx = engine.query(Query::approx(lib, p, 0.5)).unwrap();
    assert_eq!(approx.source, AnswerSource::Interpolated);
    let misses_before = engine.stats().misses;

    let exact = engine.query(Query::exact(lib, p)).unwrap();
    assert_eq!(exact.source, AnswerSource::Miss, "nothing was cached");
    assert_eq!(engine.stats().misses, misses_before + 1);

    let again = engine.query(Query::approx(lib, p, 0.5)).unwrap();
    assert_eq!(
        again.source,
        AnswerSource::Hit,
        "a resident exact entry beats the fit"
    );
    assert_eq!(again.seconds.to_bits(), exact.seconds.to_bits());
}

/// The engine's counters tie out: hits + coalesced + misses equals the
/// number of exact-tier resolutions, interpolated counts the rest.
#[test]
fn stats_account_for_every_query() {
    let lib = Library::CublasXt;
    let engine = ServeEngine::new(dgx1());
    for n in GRID_N {
        engine.query(Query::exact(lib, params(Routine::Trsm, n))).unwrap();
    }
    for n in GRID_N {
        engine.query(Query::exact(lib, params(Routine::Trsm, n))).unwrap();
    }
    for n in MID_N {
        engine
            .query(Query::approx(lib, params(Routine::Trsm, n), 0.5))
            .unwrap();
    }
    let st = engine.stats();
    let exact_resolutions = st.hits + st.coalesced + st.misses;
    assert_eq!(
        exact_resolutions + st.interpolated,
        (2 * GRID_N.len() + MID_N.len()) as u64
    );
    assert_eq!(st.hits, GRID_N.len() as u64, "second grid pass all hits");
    assert_eq!(st.misses as usize + st.interpolated as usize, GRID_N.len() + MID_N.len());
}
