//! # xkblas-repro
//!
//! A full reproduction of *“Evaluation of two topology-aware heuristics on
//! level-3 BLAS library for multi-GPU platforms”* (Gautier & Lima,
//! PAW-ATM / SC 2021) as a Rust workspace, with the paper's DGX-1 replaced
//! by a deterministic discrete-event model (see `DESIGN.md`).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`topo`] — fabric descriptions (the DGX-1 hybrid cube mesh, NVSwitch
//!   tiers, PCIe boxes, multi-node NIC fabrics) behind one `FabricSpec`.
//! * [`sim`] — the discrete-event core.
//! * [`kernels`] — real CPU tile kernels + the V100 timing model.
//! * [`runtime`] — the XKaapi-like task runtime with the paper's two
//!   heuristics.
//! * [`blas`] — the XKBlas-like asynchronous tiled BLAS-3 API.
//! * [`baselines`] — policy models of the competing libraries.
//! * [`serve`] — the planner-as-a-service query engine (sharded
//!   single-flight cache + interpolation fast tier).
//! * [`bench`] — the table/figure reproduction harness.
//! * [`trace`] — execution traces, breakdowns and Gantt charts.
//!
//! ## Quickstart
//!
//! ```
//! use xkblas_repro::prelude::*;
//!
//! // Asynchronous tiled DGEMM, really computed on host threads.
//! let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), 64);
//! let a = Matrix::random(256, 256, 1);
//! let b = Matrix::random(256, 256, 2);
//! let c = Matrix::zeros(256, 256);
//! gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
//! ctx.memory_coherent_async(&c);
//! ctx.run_numeric(0);
//!
//! // The same call, timed on the simulated 8-GPU DGX-1 with full
//! // observability (link occupancy, contention, critical path).
//! let mut sim_ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), 2048);
//! sim_ctx.set_simulation_only(true);
//! sim_ctx.set_observability(ObsLevel::Full);
//! let (pa, pb, pc) = (Matrix::phantom(16384, 16384),
//!                     Matrix::phantom(16384, 16384),
//!                     Matrix::phantom(16384, 16384));
//! gemm_async(&mut sim_ctx, Trans::No, Trans::No, 1.0, &pa, &pb, 0.5, &pc);
//! sim_ctx.memory_coherent_async(&pc);
//! let outcome = sim_ctx.run_simulated();
//! assert!(outcome.makespan > 0.0);
//! let report = outcome.obs.expect("full observability");
//! let cp = report.critical_path.expect("critical path recorded");
//! assert_eq!(cp.length, outcome.makespan);
//! ```

pub use xk_baselines as baselines;
pub use xk_bench as bench;
pub use xk_kernels as kernels;
pub use xk_lp as lp;
pub use xk_runtime as runtime;
pub use xk_serve as serve;
pub use xk_sim as sim;
pub use xk_topo as topo;
pub use xk_trace as trace;
pub use xkblas_core as blas;

/// The most common imports in one place.
pub mod prelude {
    pub use xk_runtime::{
        Attribution, Error, Heuristics, MakespanBound, ObsLevel, ObsReport, RuntimeConfig,
        SchedulerKind, SimSession,
    };
    pub use xk_topo::{builders, dgx1, fabrics, Device, FabricBuilder, FabricSpec};
    pub use xkblas_core::{
        gemm_async, symm_async, syr2k_async, syrk_async, trmm_async, trsm_async, Context, Diag,
        Matrix, Routine, Side, Trans, Uplo,
    };
}
