//! Cross-crate integration tests: the paper's qualitative claims, asserted
//! end-to-end through the public API on the simulated DGX-1, plus numeric
//! round trips through the full stack.

use xkblas_repro::baselines::{run, Library, RunError, RunParams, XkVariant};
use xkblas_repro::bench::{
    best_tile_run, run_chameleon_composition, run_xkblas_composition,
};
use xkblas_repro::kernels::aux::rel_error;
use xkblas_repro::kernels::reference;
use xkblas_repro::prelude::*;

fn params(routine: Routine, n: usize, tile: usize) -> RunParams {
    RunParams {
        routine,
        n,
        tile,
        data_on_device: false,
    }
}

/// §IV-B / Fig. 3: both heuristics on beats both off, for every routine of
/// the ablation, at a communication-bound size.
#[test]
fn heuristics_help_at_moderate_sizes() {
    let topo = dgx1();
    for routine in [Routine::Gemm, Routine::Syr2k, Routine::Trsm] {
        let full = run(Library::XkBlas(XkVariant::Full), &topo, &params(routine, 16384, 2048))
            .unwrap();
        let none = run(
            Library::XkBlas(XkVariant::NoHeuristicNoTopo),
            &topo,
            &params(routine, 16384, 2048),
        )
        .unwrap();
        assert!(
            full.tflops > none.tflops,
            "{routine:?}: full {} <= none {}",
            full.tflops,
            none.tflops
        );
    }
}

/// §IV-B: GEMM is insensitive to the topology-aware ranking once the
/// optimistic heuristic is off (Table II: −43.5% vs −43%).
#[test]
fn gemm_insensitive_to_topology_ranking() {
    let topo = dgx1();
    let noh = run(Library::XkBlas(XkVariant::NoHeuristic), &topo, &params(Routine::Gemm, 16384, 2048)).unwrap();
    let none = run(Library::XkBlas(XkVariant::NoHeuristicNoTopo), &topo, &params(Routine::Gemm, 16384, 2048)).unwrap();
    let rel = (noh.tflops - none.tflops).abs() / none.tflops;
    assert!(rel < 0.05, "GEMM topo sensitivity {rel}");
}

/// §IV-B: SYR2K *is* sensitive to the topology ranking (−53.5% in Table II).
#[test]
fn syr2k_sensitive_to_topology_ranking() {
    let topo = dgx1();
    let noh = run(Library::XkBlas(XkVariant::NoHeuristic), &topo, &params(Routine::Syr2k, 16384, 2048)).unwrap();
    let none = run(Library::XkBlas(XkVariant::NoHeuristicNoTopo), &topo, &params(Routine::Syr2k, 16384, 2048)).unwrap();
    assert!(
        none.tflops < 0.85 * noh.tflops,
        "expected a topology hit: none {} vs noh {}",
        none.tflops,
        noh.tflops
    );
}

/// §IV-C / Fig. 4: data-on-device is faster than data-on-host everywhere,
/// and the gap narrows as N grows (O(N) arithmetic intensity).
#[test]
fn data_on_device_gains_shrink_with_n() {
    let topo = dgx1();
    let gain = |n: usize| {
        let doh = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, n, false)
            .unwrap()
            .1
            .tflops;
        let dod = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, n, true)
            .unwrap()
            .1
            .tflops;
        dod / doh
    };
    let small = gain(16384);
    let large = gain(32768);
    assert!(small > 1.2, "DoD gain at 16384 too small: {small}");
    assert!(large > 1.0, "DoD must not lose at 32768: {large}");
    assert!(small > large, "gap must narrow: {small} vs {large}");
}

/// §IV-D / Fig. 5: on GEMM, XKBlas beats every other library at a
/// communication-bound size.
#[test]
fn xkblas_wins_gemm_at_moderate_size() {
    let topo = dgx1();
    let (_, xk) = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 24576, false).unwrap();
    for lib in [
        Library::CublasXt,
        Library::CublasMg,
        Library::ChameleonTile,
        Library::ChameleonLapack,
        Library::Slate,
        Library::Dplasma,
        Library::Blasx,
    ] {
        let (_, r) = best_tile_run(lib, &topo, Routine::Gemm, 24576, false).unwrap();
        assert!(
            xk.tflops > r.tflops,
            "{} ({}) >= XKBlas ({})",
            lib.name(),
            r.tflops,
            xk.tflops
        );
    }
}

/// §IV-D: the drop-in-replacement gaps — cuBLAS-XT ~3x, Chameleon LAPACK
/// ~5x behind XKBlas at moderate sizes.
#[test]
fn drop_in_replacement_gaps() {
    let topo = dgx1();
    let (_, xk) = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 24576, false).unwrap();
    let (_, xt) = best_tile_run(Library::CublasXt, &topo, Routine::Gemm, 24576, false).unwrap();
    let (_, cl) = best_tile_run(Library::ChameleonLapack, &topo, Routine::Gemm, 24576, false).unwrap();
    assert!(xk.tflops / xt.tflops > 2.0, "vs cuBLAS-XT: {}", xk.tflops / xt.tflops);
    assert!(xk.tflops / cl.tflops > 3.5, "vs Chameleon LAPACK: {}", xk.tflops / cl.tflops);
}

/// §II-B / Fig. 5: SLATE never exchanges data GPU-to-GPU; cuBLAS-XT
/// neither — and both re-read far more than the 3·N² minimum.
#[test]
fn pcie_bound_baselines() {
    let topo = dgx1();
    let n = 16384usize;
    let min_bytes = 3 * (n * n * 8) as u64;
    for lib in [Library::Slate, Library::CublasXt] {
        let (_, r) = best_tile_run(lib, &topo, Routine::Gemm, n, false).unwrap();
        assert_eq!(r.bytes_p2p, 0, "{}", lib.name());
        assert!(r.bytes_h2d > min_bytes, "{}", lib.name());
    }
}

/// Fig. 5 caption: BLASX reports allocation errors above N = 45000, and
/// the GEMM-only libraries reject other routines.
#[test]
fn library_limitations_reproduced() {
    let topo = dgx1();
    assert!(matches!(
        run(Library::Blasx, &topo, &params(Routine::Gemm, 49152, 2048)),
        Err(RunError::OutOfMemory)
    ));
    for lib in [Library::Blasx, Library::CublasMg, Library::Dplasma] {
        assert!(matches!(
            run(lib, &topo, &params(Routine::Syrk, 8192, 2048)),
            Err(RunError::Unsupported)
        ));
    }
}

/// §IV-F / Fig. 8-9: the composition beats synchronous calls and has no
/// synchronization hole.
#[test]
fn composition_beats_synchronous_execution() {
    let topo = dgx1();
    let xk = run_xkblas_composition(&topo, 16384, 2048);
    let ch = run_chameleon_composition(&topo, 16384, 2048);
    assert!(xk.tflops > 1.3 * ch.tflops, "{} vs {}", xk.tflops, ch.tflops);
    // The Gantt comparison of Fig. 9 is at N = 32768: there XKBlas has no
    // synchronization hole while Chameleon stalls between the calls.
    let xk_big = run_xkblas_composition(&topo, 32768, 2048);
    let ch_big = run_chameleon_composition(&topo, 32768, 2048);
    assert!(
        xk_big.sync_gap < ch_big.sync_gap,
        "gaps at 32768: {} vs {}",
        xk_big.sync_gap,
        ch_big.sync_gap
    );
}

/// Fig. 6: XKBlas spends a far smaller fraction of GPU time in transfers
/// than cuBLAS-XT (paper: 25.4% vs >60% for the synchronous stacks).
#[test]
fn transfer_ratio_ordering() {
    let topo = dgx1();
    let (_, xk) = best_tile_run(Library::XkBlas(XkVariant::Full), &topo, Routine::Gemm, 16384, false).unwrap();
    let (_, xt) = best_tile_run(Library::CublasXt, &topo, Routine::Gemm, 16384, false).unwrap();
    let rx = xk.trace.breakdown().transfer_ratio();
    let rt = xt.trace.breakdown().transfer_ratio();
    assert!(rx < rt, "XKBlas {rx} vs cuBLAS-XT {rt}");
}

/// Full-stack numeric round trip: compose two routines numerically through
/// the facade crate and verify against the reference.
#[test]
fn facade_numeric_round_trip() {
    let n = 192;
    let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), 32);
    let a = Matrix::random(n, n, 21);
    let b = Matrix::random(n, n, 22);
    let c = Matrix::random(n, n, 23);
    // C = 1.0 * A * B + 0 => then SYRK updates C's lower triangle in a
    // second composed call reading the GEMM result.
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
    syrk_async(&mut ctx, Uplo::Lower, Trans::No, 1.0, &c, 0.0, &a);
    ctx.memory_coherent_async(&a);
    ctx.run_numeric(0);

    let cd = reference::ref_gemm(Trans::No, Trans::No, 1.0, Matrix::random(n, n, 21).view(), b.view(), 0.0, Matrix::zeros(n, n).view());
    let want = reference::ref_syrk(Trans::No, 1.0, cd.view(), 0.0, Matrix::zeros(n, n).view());
    let err = {
        let mut worst = 0.0f64;
        for j in 0..n {
            for i in j..n {
                worst = worst.max((a.at(i, j) - want.at(i, j)).abs());
            }
        }
        worst / want.data.iter().fold(1.0f64, |m, v| m.max(v.abs()))
    };
    assert!(err < 1e-9, "composed numeric error {err}");
}

/// Determinism across the whole stack: a simulated run repeats bit-for-bit.
#[test]
fn full_stack_determinism() {
    let topo = dgx1();
    let p = params(Routine::Syr2k, 12288, 2048);
    let a = run(Library::XkBlas(XkVariant::Full), &topo, &p).unwrap();
    let b = run(Library::XkBlas(XkVariant::Full), &topo, &p).unwrap();
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.bytes_h2d, b.bytes_h2d);
    assert_eq!(a.bytes_p2p, b.bytes_p2p);
    assert_eq!(a.trace.len(), b.trace.len());
}

/// Numeric execution is independent of tile size and thread count.
#[test]
fn numeric_result_invariant_to_tiling() {
    let n = 120;
    let a = Matrix::random(n, n, 31);
    let b = Matrix::random(n, n, 32);
    let mut results = Vec::new();
    for tile in [17, 40, 120] {
        let c = Matrix::random(n, n, 33);
        let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), tile);
        gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 1.0, &c);
        ctx.run_numeric(2);
        results.push(c.to_vec());
    }
    let want = &results[0];
    for r in &results[1..] {
        let worst = want
            .iter()
            .zip(r)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-10, "tiling changed the numbers by {worst}");
    }
    // And against the reference.
    let c0 = Matrix::random(n, n, 33);
    let want_ref = reference::ref_gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c0.view());
    let err = rel_error(
        xkblas_repro::kernels::MatRef::from_slice(&results[0], n, n, n),
        want_ref.view(),
    );
    assert!(err < 1e-10);
}
