//! Failure/degradation injection: the model must respond physically to
//! broken links, shrunken memory and serialized execution.

use xkblas_repro::baselines::{run, Library, RunParams, XkVariant};
use xkblas_repro::prelude::*;
use xkblas_repro::runtime::{SimOutcome, SimSession, TaskGraph};
use xkblas_repro::topo::{builders, LinkSpec, FabricSpec};

/// All simulated runs go through the session front door.
fn simulate(graph: &TaskGraph, topo: &FabricSpec, cfg: &RuntimeConfig) -> SimOutcome {
    SimSession::on(topo).config(cfg.clone()).run(graph).into_outcome()
}

fn gemm_params(n: usize, tile: usize) -> RunParams {
    RunParams {
        routine: Routine::Gemm,
        n,
        tile,
        data_on_device: false,
    }
}

/// A DGX-1 whose NVLinks are degraded to a fraction of their bandwidth.
fn degraded_dgx1(factor: f64) -> FabricSpec {
    let base = dgx1();
    let m = base.bandwidth_matrix_gbs();
    let degraded: Vec<Vec<f64>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, &v)| {
                    if i == j || base.perf_rank(i, j) == 0 {
                        v
                    } else {
                        // Keep the class (thresholds) but shrink bandwidth
                        // to the lower class boundary times the factor.
                        v * factor
                    }
                })
                .collect()
        })
        .collect();
    builders::from_bandwidth_matrix_gbs("degraded", &degraded)
}

/// Slower NVLinks must slow down the heuristic-heavy runs (they route
/// traffic over exactly those links).
#[test]
fn degraded_nvlink_hurts_xkblas() {
    let healthy = dgx1();
    let sick = degraded_dgx1(0.55); // x2 bricks drop to ~53 GB/s
    let p = gemm_params(16384, 2048);
    let a = run(Library::XkBlas(XkVariant::Full), &healthy, &p).unwrap();
    let b = run(Library::XkBlas(XkVariant::Full), &sick, &p).unwrap();
    assert!(
        b.tflops < a.tflops,
        "degraded links did not hurt: {} vs {}",
        b.tflops,
        a.tflops
    );
    // cuBLAS-XT never touches NVLink: immune to the degradation.
    let xa = run(Library::CublasXt, &healthy, &p).unwrap();
    let xb = run(Library::CublasXt, &sick, &p).unwrap();
    assert!((xa.seconds - xb.seconds).abs() < 1e-9);
}

/// Shrinking GPU memory forces evictions and write-backs but must never
/// deadlock or change the task count.
#[test]
fn memory_pressure_degrades_gracefully() {
    let topo = dgx1();
    // Shallow window so the pinned working set stays below the tight
    // capacity (otherwise the executor's forced-acquire path legitimately
    // oversubscribes and nothing is evictable).
    let mut base_cfg = RuntimeConfig::xkblas();
    base_cfg.window = 4;
    base_cfg.prefetch_at_assign = false;
    let build = || {
        let mut ctx = Context::<f64>::new(topo.clone(), base_cfg.clone(), 2048);
        ctx.set_simulation_only(true);
        let a = Matrix::<f64>::phantom(16384, 16384);
        let b = Matrix::<f64>::phantom(16384, 16384);
        let c = Matrix::<f64>::phantom(16384, 16384);
        gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
        ctx.memory_coherent_async(&c);
        ctx
    };

    let roomy = build().run_simulated();

    let mut tight_cfg = base_cfg.clone();
    // GEMM executes wave-by-wave (k outer), so its streaming working set is
    // ~14 tiles per GPU; only a capacity *below* that forces the C tiles
    // out (dirty write-backs) and back in every wave.
    tight_cfg.gpu_memory = 300 << 20; // ~9 tiles of 32 MiB
    let mut ctx = Context::<f64>::new(topo.clone(), tight_cfg, 2048);
    ctx.set_simulation_only(true);
    let a = Matrix::<f64>::phantom(16384, 16384);
    let b = Matrix::<f64>::phantom(16384, 16384);
    let c = Matrix::<f64>::phantom(16384, 16384);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    ctx.memory_coherent_async(&c);
    let tight = ctx.run_simulated();

    assert_eq!(roomy.tasks_run, tight.tasks_run, "tasks lost under pressure");
    // Evicted tiles must be re-acquired — from the host or from a peer
    // that still holds them.
    let roomy_traffic = roomy.bytes_h2d + roomy.bytes_p2p;
    let tight_traffic = tight.bytes_h2d + tight.bytes_p2p;
    assert!(
        tight_traffic > roomy_traffic,
        "evictions must force re-reads: {tight_traffic} vs {roomy_traffic}"
    );
    assert!(
        tight.bytes_d2h > roomy.bytes_d2h,
        "dirty evictions must write back: {} vs {}",
        tight.bytes_d2h,
        roomy.bytes_d2h
    );
    assert!(tight.makespan >= roomy.makespan);
}

/// A single-GPU topology still completes everything (no peer to talk to).
#[test]
fn single_gpu_degenerate_platform() {
    let topo = builders::pcie_only(1);
    let p = gemm_params(8192, 2048);
    let r = run(Library::XkBlas(XkVariant::Full), &topo, &p).unwrap();
    assert!(r.tflops > 0.0);
    assert_eq!(r.bytes_p2p, 0);
    // All kernels on the one GPU.
    let loads = r.trace.kernel_load_per_gpu(1);
    assert!(loads[0] > 0.0);
}

/// An asymmetric custom topology validates and runs (route symmetry is
/// enforced by construction, bandwidth by symmetrization).
#[test]
fn custom_topology_runs() {
    let m = vec![
        vec![700.0, 90.0, 45.0, 10.0],
        vec![90.0, 700.0, 10.0, 45.0],
        vec![45.0, 10.0, 700.0, 90.0],
        vec![10.0, 45.0, 90.0, 700.0],
    ];
    let topo = builders::from_bandwidth_matrix_gbs("custom4", &m);
    let p = gemm_params(8192, 1024);
    let r = run(Library::XkBlas(XkVariant::Full), &topo, &p).unwrap();
    assert!(r.tflops > 0.0);
    assert!(r.bytes_p2p > 0, "replicated tiles should travel P2P");
}

/// Zero-bandwidth links are rejected at topology construction.
#[test]
fn invalid_topology_rejected() {
    let local = LinkSpec::new(xkblas_repro::topo::LinkClass::Local, 1e11);
    let dead = LinkSpec::new(xkblas_repro::topo::LinkClass::Pcie, 0.0);
    let host = LinkSpec::new(xkblas_repro::topo::LinkClass::Pcie, 1e10);
    let result = std::panic::catch_unwind(|| {
        FabricSpec::from_tables(
            "dead-link",
            2,
            vec![local, dead, dead, local],
            vec![host, host],
            vec![0, 0],
            vec![0],
        )
    });
    assert!(result.is_err());
}

/// A link dying while an optimistic-D2D forward would use it: the waiting
/// task must surface `LinkDown` instead of hanging on the in-flight
/// transfer, the unaffected task stays healthy, and the run drains.
#[test]
fn link_failure_during_optimistic_d2d() {
    use xkblas_repro::kernels::perfmodel::TileOp;
    use xkblas_repro::runtime::task::{Access, TaskAccess};
    use xkblas_repro::runtime::{DataInfo, Error, LinkFault, SchedulerKind};

    let topo = dgx1();
    let mb = 1u64 << 20;
    let mut g = TaskGraph::new();
    let shared = g.add_host_tile(32 * mb, true, "A");
    let c0 = g.add_data(DataInfo::host(32 * mb, true, "C0").with_owner(0));
    let c1 = g.add_data(DataInfo::host(32 * mb, true, "C1").with_owner(4));
    let op = TileOp::Gemm { m: 2048, n: 2048, k: 2048 };
    let read = |h| TaskAccess { handle: h, access: Access::Read };
    let rw = |h| TaskAccess { handle: h, access: Access::ReadWrite };
    g.add_task(op, vec![read(shared), rw(c0)], "t0");
    g.add_task(op, vec![read(shared), rw(c1)], "t1");

    let mut cfg = RuntimeConfig::xkblas();
    cfg.scheduler = SchedulerKind::StaticOwner;

    // Healthy baseline: t1's copy of the shared tile arrives as an
    // optimistic device-to-device forward out of GPU 0.
    let healthy = SimSession::on(&topo).config(cfg.clone()).run(&g).into_outcome();
    assert!(healthy.failures.is_empty());
    assert!(healthy.bytes_p2p > 0, "expected an optimistic forward");

    // Same run with the 0->4 link dead from t=0, through the facade.
    let out = SimSession::on(&topo)
        .config(cfg)
        .link_fault(LinkFault { src: 0, dst: 4, at: 0.0 })
        .run(&g)
        .into_outcome();
    assert_eq!(out.tasks_run, 2, "run must drain, not deadlock");
    assert_eq!(
        out.failures,
        vec![(1, Error::LinkDown { src: 0, dst: 4 })],
        "the waiter fails over the dead link, its peer stays healthy"
    );
}

/// A graph with a long serial chain is dominated by the critical path on
/// any topology — parallel hardware cannot help.
#[test]
fn serial_chain_bound_by_critical_path() {
    use xkblas_repro::kernels::perfmodel::TileOp;
    use xkblas_repro::runtime::task::{Access, TaskAccess};

    let topo = dgx1();
    let mut g = TaskGraph::new();
    let h = g.add_host_tile(32 << 20, true, "chain");
    for i in 0..64 {
        g.add_task(
            TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
            vec![TaskAccess { handle: h, access: Access::ReadWrite }],
            format!("k{i}"),
        );
    }
    let cfg = RuntimeConfig::xkblas();
    let cp = g.critical_path_seconds(&cfg.gpu_model);
    let out = simulate(&g, &topo, &cfg);
    assert!(out.makespan >= cp);
    // And not much more: the chain pipelines on one device.
    assert!(out.makespan < cp * 1.5, "{} vs cp {}", out.makespan, cp);
}
