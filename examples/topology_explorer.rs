//! Topology explorer: how much do the paper's two heuristics buy on
//! platforms other than the DGX-1? (The paper's §V asks exactly this for
//! POWER9/Summit nodes.)
//!
//! Run with: `cargo run --release --example topology_explorer`

use xkblas_repro::baselines::{run, Library, RunParams, XkVariant};
use xkblas_repro::prelude::*;
use xkblas_repro::topo::builders;

fn main() {
    let topologies: Vec<(&str, FabricSpec)> = vec![
        ("DGX-1 (hybrid cube mesh)", dgx1()),
        ("PCIe-only node, 8 GPUs", builders::pcie_only(8)),
        ("NVSwitch-style all-to-all", builders::nvlink_all_to_all(8)),
        ("Summit-like node (6 GPUs, NVLink to host)", builders::summit_node()),
        ("NVLink ring, 8 GPUs", builders::nvlink_ring(8)),
        ("DGX-2-style NVSwitch tier, 16 GPUs", fabrics::dgx2(16)),
        ("Commodity PCIe box, 4 GPUs", fabrics::pcie_box(4)),
        ("Two nodes over IB, 4+4 GPUs", fabrics::dual_node_ib(4)),
    ];

    println!("DGEMM N=16384, tile 2048, data-on-host: heuristics on vs off\n");
    println!(
        "{:<44} {:>9} {:>9} {:>7}",
        "topology", "full TF", "none TF", "gain"
    );
    for (name, topo) in topologies {
        let params = RunParams {
            routine: Routine::Gemm,
            n: 16384,
            tile: 2048,
            data_on_device: false,
        };
        let full = run(Library::XkBlas(XkVariant::Full), &topo, &params).unwrap();
        let none = run(Library::XkBlas(XkVariant::NoHeuristicNoTopo), &topo, &params).unwrap();
        println!(
            "{:<44} {:>9.2} {:>9.2} {:>6.1}%",
            name,
            full.tflops,
            none.tflops,
            (full.tflops / none.tflops - 1.0) * 100.0
        );
    }

    println!(
        "\nAs §III-C predicts, hosts with fast NVLink CPU links (Summit) gain \
         little from the optimistic device-to-device heuristic, while \
         NVLink-rich fabrics (DGX-1, NVSwitch, ring) gain the most. On a \
         PCIe-only node the heuristic backfires: forwarding crosses two \
         switch uplinks where a host read crosses one."
    );
}
