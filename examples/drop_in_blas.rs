//! Drop-in BLAS-3: exercise all six routines of the paper through the
//! asynchronous API on real data, validating each against the reference
//! implementation — the "legacy application with LAPACK layout" use case
//! the paper targets.
//!
//! Run with: `cargo run --release --example drop_in_blas`

use xkblas_repro::kernels::aux::{max_abs_diff, max_abs_diff_tri};
use xkblas_repro::kernels::reference as r;
use xkblas_repro::prelude::*;

fn main() {
    let n = 768;
    let tile = 96;
    let mk_ctx = || Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), tile);

    // GEMM
    {
        let (a, b, c) = (Matrix::random(n, n, 1), Matrix::random(n, n, 2), Matrix::random(n, n, 3));
        let want = r::ref_gemm(Trans::No, Trans::Yes, 1.5, a.view(), b.view(), -0.5, c.view());
        let mut ctx = mk_ctx();
        gemm_async(&mut ctx, Trans::No, Trans::Yes, 1.5, &a, &b, -0.5, &c);
        ctx.run_numeric(0);
        report("dgemm (B transposed)", max_abs_diff(c.view(), want.view()));
    }
    // SYMM
    {
        let (a, b, c) = (Matrix::random(n, n, 4), Matrix::random(n, n, 5), Matrix::random(n, n, 6));
        let want = r::ref_symm(Side::Right, Uplo::Upper, 2.0, a.view(), b.view(), 1.0, c.view());
        let mut ctx = mk_ctx();
        symm_async(&mut ctx, Side::Right, Uplo::Upper, 2.0, &a, &b, 1.0, &c);
        ctx.run_numeric(0);
        report("dsymm (right, upper)", max_abs_diff(c.view(), want.view()));
    }
    // SYRK
    {
        let (a, c) = (Matrix::random(n, n / 2, 7), Matrix::random(n, n, 8));
        let want = r::ref_syrk(Trans::No, 1.0, a.view(), 0.0, c.view());
        let mut ctx = mk_ctx();
        syrk_async(&mut ctx, Uplo::Lower, Trans::No, 1.0, &a, 0.0, &c);
        ctx.run_numeric(0);
        report("dsyrk (lower)", max_abs_diff_tri(Uplo::Lower, c.view(), want.view()));
    }
    // SYR2K
    {
        let (a, b, c) = (Matrix::random(n, n / 2, 9), Matrix::random(n, n / 2, 10), Matrix::random(n, n, 11));
        let want = r::ref_syr2k(Trans::No, 0.5, a.view(), b.view(), 2.0, c.view());
        let mut ctx = mk_ctx();
        syr2k_async(&mut ctx, Uplo::Upper, Trans::No, 0.5, &a, &b, 2.0, &c);
        ctx.run_numeric(0);
        report("dsyr2k (upper)", max_abs_diff_tri(Uplo::Upper, c.view(), want.view()));
    }
    // TRMM
    {
        let (a, b) = (Matrix::random(n, n, 12), Matrix::random(n, n, 13));
        let want = r::ref_trmm(Side::Left, Uplo::Upper, Trans::Yes, Diag::Unit, 1.0, a.view(), b.view());
        let mut ctx = mk_ctx();
        trmm_async(&mut ctx, Side::Left, Uplo::Upper, Trans::Yes, Diag::Unit, 1.0, &a, &b);
        ctx.run_numeric(0);
        report("dtrmm (left, upper^T, unit)", max_abs_diff(b.view(), want.view()));
    }
    // TRSM
    {
        let (a, b) = (Matrix::random_diag_dominant(n, 14), Matrix::random(n, n, 15));
        let b0 = b.to_vec();
        let mut ctx = mk_ctx();
        trsm_async(&mut ctx, Side::Right, Uplo::Lower, Trans::No, Diag::NonUnit, 3.0, &a, &b);
        ctx.run_numeric(0);
        let res = r::trsm_residual(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            3.0,
            a.view(),
            b.view(),
            xkblas_repro::kernels::MatRef::from_slice(&b0, n, n, n),
        );
        report("dtrsm (right, lower) residual", res);
    }
    println!("\nall six BLAS-3 routines validated through the async API.");
}

fn report(name: &str, err: f64) {
    println!("{name:<32} max error {err:.3e}");
    assert!(err < 1e-8, "{name} failed: {err}");
}
