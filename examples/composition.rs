//! Composition of BLAS calls (paper §IV-F): a TRSM followed by a GEMM that
//! consumes its result, without any intermediate synchronization. Verified
//! numerically on the host, then timed against the synchronous
//! (Chameleon-style) execution on the simulated DGX-1, with Gantt charts.
//!
//! Run with: `cargo run --release --example composition`

use xkblas_repro::bench::{run_chameleon_composition, run_xkblas_composition};
use xkblas_repro::kernels::aux::rel_error;
use xkblas_repro::kernels::{reference, MatRef};
use xkblas_repro::prelude::*;
use xkblas_repro::trace::{gantt, GanttOptions};

fn main() {
    // --- numeric correctness of the composed graph -----------------------
    let n = 512;
    let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), 64);
    let a = Matrix::random_diag_dominant(n, 1);
    let b = Matrix::random(n, n, 2);
    let c = Matrix::random(n, n, 3);
    let d = Matrix::zeros(n, n);

    // Reference: X = inv(A) B; D = X C.
    let mut x = b.to_vec();
    xkblas_repro::kernels::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::No,
        Diag::NonUnit,
        1.0,
        a.view(),
        xkblas_repro::kernels::MatMut::from_slice(&mut x, n, n, n),
    );
    let want = reference::ref_gemm(
        Trans::No,
        Trans::No,
        1.0,
        MatRef::from_slice(&x, n, n, n),
        c.view(),
        0.0,
        d.view(),
    );

    trsm_async(&mut ctx, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, &a, &b);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &b, &c, 0.0, &d);
    ctx.memory_coherent_async(&d);
    ctx.run_numeric(0);
    let err = rel_error(d.view(), want.view());
    println!("composed TRSM+GEMM n={n}: rel. error vs sequential reference {err:.2e}");
    assert!(err < 1e-8);

    // --- simulated timing: composition vs synchronous calls --------------
    let topo = dgx1();
    let nsim = 16384;
    let xk = run_xkblas_composition(&topo, nsim, 2048);
    let ch = run_chameleon_composition(&topo, nsim, 2048);
    println!("\nsimulated composition, N={nsim}, block 2048 on 8 GPUs:");
    println!(
        "  XKBlas    : {:6.3}s = {:5.2} TF/s, longest kernel gap {:6.1} ms",
        xk.seconds,
        xk.tflops,
        xk.sync_gap * 1e3
    );
    println!(
        "  Chameleon : {:6.3}s = {:5.2} TF/s, longest kernel gap {:6.1} ms",
        ch.seconds,
        ch.tflops,
        ch.sync_gap * 1e3
    );

    let opts = GanttOptions {
        width: 100,
        per_lane: false,
    };
    println!("\nXKBlas Gantt (no hole between the two calls):");
    print!("{}", gantt::render(&xk.trace, topo.n_gpus(), &opts));
    println!("\nChameleon Gantt (synchronization hole between TRSM and GEMM):");
    print!("{}", gantt::render(&ch.trace, topo.n_gpus(), &opts));
}
