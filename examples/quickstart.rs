//! Quickstart: asynchronous tiled DGEMM, computed for real on host threads
//! and verified, then timed on the simulated 8-GPU DGX-1.
//!
//! Run with: `cargo run --release --example quickstart`

use xkblas_repro::kernels::aux::rel_error;
use xkblas_repro::kernels::reference;
use xkblas_repro::prelude::*;

fn main() {
    // --- 1. Real numeric execution on the multicore host -----------------
    let n = 1024;
    let tile = 128;
    let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), tile);

    let a = Matrix::random(n, n, 1);
    let b = Matrix::random(n, n, 2);
    let c = Matrix::random(n, n, 3);
    let want = reference::ref_gemm(
        Trans::No,
        Trans::No,
        1.0,
        a.view(),
        b.view(),
        0.5,
        c.view(),
    );

    let t0 = std::time::Instant::now();
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    ctx.memory_coherent_async(&c);
    let par = ctx.run_numeric(0);
    let wall = t0.elapsed().as_secs_f64();

    let err = rel_error(c.view(), want.view());
    let gflops = 2.0 * (n as f64).powi(3) / wall / 1e9;
    println!("numeric DGEMM n={n}: {} tasks on {} threads, {wall:.3}s ({gflops:.1} GFlop/s CPU), rel. error {err:.2e}",
        par.tasks_run, par.threads);
    assert!(err < 1e-10, "wrong result!");

    // --- 2. Simulated execution on the paper's DGX-1 ---------------------
    let nsim = 24576;
    let mut sim_ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), 2048);
    sim_ctx.set_simulation_only(true);
    let pa = Matrix::<f64>::phantom(nsim, nsim);
    let pb = Matrix::<f64>::phantom(nsim, nsim);
    let pc = Matrix::<f64>::phantom(nsim, nsim);
    gemm_async(&mut sim_ctx, Trans::No, Trans::No, 1.0, &pa, &pb, 0.5, &pc);
    sim_ctx.memory_coherent_async(&pc);
    let sim = sim_ctx.run_simulated();
    let flops = Routine::Gemm.flops_square(nsim as u64);
    println!(
        "simulated DGEMM n={nsim} on 8x V100: {:.3}s = {:.1} TFlop/s \
         (h2d {:.1} GB, p2p {:.1} GB, d2h {:.1} GB, {:.1}% of time in transfers)",
        sim.makespan,
        sim.tflops(flops),
        sim.bytes_h2d as f64 / 1e9,
        sim.bytes_p2p as f64 / 1e9,
        sim.bytes_d2h as f64 / 1e9,
        sim.trace.breakdown().transfer_ratio() * 100.0,
    );
}
